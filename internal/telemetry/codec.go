package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"
)

// This file is the cluster side of the telemetry package: a
// deterministic, versioned binary codec for Snapshot and SpanNode (the
// blobs a scanner ships home in a wire trailer frame), and the merge
// semantics that fold per-server snapshots into one cluster view.
//
// Codec invariants:
//
//   - Versioned: every blob starts with "FRTM" | version | kind, so a
//     mixed-version cluster fails loudly instead of misparsing.
//   - Canonical: instruments encode sorted by name and decode REJECTS
//     out-of-order or duplicate names, so encoding is bijective — a
//     payload either fails to decode or re-encodes byte-identically
//     (the wire fuzz target leans on this, like the chunk codec).
//   - Bounded: counts from untrusted headers are sanity-checked against
//     the remaining payload before any allocation sized from them.
//
// Merge semantics (MergeSnapshots): counters sum, gauges keep the
// labeled maximum, histograms add bucket-wise (union of bounds). Every
// per-instrument operation is a commutative monoid — integer sums,
// max under a total order on (value, label), pointwise bucket sums —
// and float sums are accumulated in canonically sorted order, so the
// merge of N snapshots is permutation-invariant down to the byte
// (asserted by the codec tests and the checker's cluster tests).

// CodecVersion identifies the binary layout of telemetry blobs. Bump on
// any incompatible change.
const CodecVersion = 1

const (
	codecKindSnapshot = 1
	codecKindSpan     = 2
)

var codecMagic = [4]byte{'F', 'R', 'T', 'M'}

// headerLen is magic + version + kind.
const headerLen = 6

func appendHeader(b []byte, kind byte) []byte {
	b = append(b, codecMagic[:]...)
	return append(b, CodecVersion, kind)
}

func cputU16(b []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(b, v)
}
func cputU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}
func cputU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
func cputStr(b []byte, s string) []byte {
	b = cputU16(b, uint16(len(s)))
	return append(b, s...)
}

// EncodeSnapshot renders s as a versioned binary blob. Instruments are
// canonicalised (sorted by name) before encoding, so equal snapshots
// always produce identical bytes.
func EncodeSnapshot(s Snapshot) []byte {
	return AppendSnapshot(nil, s)
}

// AppendSnapshot appends the encoding of s to b.
func AppendSnapshot(b []byte, s Snapshot) []byte {
	b = appendHeader(b, codecKindSnapshot)

	cs := append([]CounterValue(nil), s.Counters...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	b = cputU32(b, uint32(len(cs)))
	for _, c := range cs {
		b = cputStr(b, c.Name)
		b = cputU64(b, uint64(c.Value))
	}

	gs := append([]GaugeValue(nil), s.Gauges...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
	b = cputU32(b, uint32(len(gs)))
	for _, g := range gs {
		b = cputStr(b, g.Name)
		b = cputStr(b, g.Label)
		b = cputU64(b, uint64(g.Value))
	}

	hs := append([]HistogramValue(nil), s.Histograms...)
	sort.Slice(hs, func(i, j int) bool { return hs[i].Name < hs[j].Name })
	b = cputU32(b, uint32(len(hs)))
	for _, h := range hs {
		b = cputStr(b, h.Name)
		b = cputU32(b, uint32(len(h.Bounds)))
		for _, ub := range h.Bounds {
			b = cputU64(b, math.Float64bits(ub))
		}
		// Always len(bounds)+1 counts on the wire; a hand-built value
		// with a short Counts slice encodes missing buckets as zero.
		for i := 0; i <= len(h.Bounds); i++ {
			var n int64
			if i < len(h.Counts) {
				n = h.Counts[i]
			}
			b = cputU64(b, uint64(n))
		}
		b = cputU64(b, math.Float64bits(h.Sum))
		b = cputU64(b, uint64(h.Count))
	}
	return b
}

// tdec is the telemetry-side bounded decoder (the package cannot import
// wire's, as wire imports telemetry).
type tdec struct {
	b   []byte
	off int
	err error
}

func (d *tdec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = fmt.Errorf("telemetry: truncated blob at offset %d", d.off)
		return false
	}
	return true
}

func (d *tdec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *tdec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *tdec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *tdec) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// remaining reports the undecoded byte count (0 once errored).
func (d *tdec) remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.b) - d.off
}

func (d *tdec) header(kind byte) {
	if !d.need(headerLen) {
		return
	}
	if [4]byte(d.b[d.off:d.off+4]) != codecMagic {
		d.err = fmt.Errorf("telemetry: bad blob magic %q", d.b[d.off:d.off+4])
		return
	}
	if v := d.b[d.off+4]; v != CodecVersion {
		d.err = fmt.Errorf("telemetry: unsupported codec version %d (have %d)", v, CodecVersion)
		return
	}
	if k := d.b[d.off+5]; k != kind {
		d.err = fmt.Errorf("telemetry: blob kind %d, want %d", k, kind)
		return
	}
	d.off += headerLen
}

// DecodeSnapshot parses an encoded snapshot. Counts are sanity-bounded
// against the payload before allocation, and the canonical form —
// strictly ascending instrument names — is enforced, which is what
// makes the codec bijective.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	d := &tdec{b: b}
	d.header(codecKindSnapshot)
	var s Snapshot

	nC := d.u32()
	// Minimum counter record: 2-byte name length + 8-byte value.
	if d.err == nil && uint64(nC)*10 > uint64(d.remaining()) {
		return s, fmt.Errorf("telemetry: implausible counter count %d", nC)
	}
	prev := ""
	for i := uint32(0); i < nC && d.err == nil; i++ {
		name := d.str()
		v := int64(d.u64())
		if d.err == nil && i > 0 && name <= prev {
			return s, fmt.Errorf("telemetry: counters not in canonical order at %q", name)
		}
		prev = name
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: v})
	}

	nG := d.u32()
	if d.err == nil && uint64(nG)*12 > uint64(d.remaining()) {
		return s, fmt.Errorf("telemetry: implausible gauge count %d", nG)
	}
	prev = ""
	for i := uint32(0); i < nG && d.err == nil; i++ {
		name := d.str()
		label := d.str()
		v := int64(d.u64())
		if d.err == nil && i > 0 && name <= prev {
			return s, fmt.Errorf("telemetry: gauges not in canonical order at %q", name)
		}
		prev = name
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Label: label, Value: v})
	}

	nH := d.u32()
	// Minimum histogram record: name len + bound count + one (+Inf)
	// bucket + sum + count.
	if d.err == nil && uint64(nH)*30 > uint64(d.remaining()) {
		return s, fmt.Errorf("telemetry: implausible histogram count %d", nH)
	}
	prev = ""
	for i := uint32(0); i < nH && d.err == nil; i++ {
		name := d.str()
		nB := d.u32()
		if d.err == nil && uint64(nB)*16 > uint64(d.remaining()) {
			return s, fmt.Errorf("telemetry: implausible bound count %d in %q", nB, name)
		}
		if d.err != nil {
			break
		}
		hv := HistogramValue{Name: name}
		if nB > 0 {
			hv.Bounds = make([]float64, nB)
		}
		for j := uint32(0); j < nB; j++ {
			hv.Bounds[j] = math.Float64frombits(d.u64())
		}
		for j := uint32(1); d.err == nil && j < nB; j++ {
			if !(hv.Bounds[j-1] < hv.Bounds[j]) {
				return s, fmt.Errorf("telemetry: histogram %q bounds not ascending", name)
			}
		}
		hv.Counts = make([]int64, nB+1)
		for j := range hv.Counts {
			hv.Counts[j] = int64(d.u64())
		}
		hv.Sum = math.Float64frombits(d.u64())
		hv.Count = int64(d.u64())
		if d.err == nil && i > 0 && name <= prev {
			return s, fmt.Errorf("telemetry: histograms not in canonical order at %q", name)
		}
		prev = name
		s.Histograms = append(s.Histograms, hv)
	}

	if d.err != nil {
		return Snapshot{}, d.err
	}
	if d.off != len(b) {
		return Snapshot{}, fmt.Errorf("telemetry: %d trailing bytes in snapshot", len(b)-d.off)
	}
	return s, nil
}

// EncodeSpanNode renders a span tree as a versioned binary blob.
func EncodeSpanNode(n *SpanNode) []byte {
	return AppendSpanNode(nil, n)
}

// AppendSpanNode appends the encoding of the tree rooted at n to b.
func AppendSpanNode(b []byte, n *SpanNode) []byte {
	b = appendHeader(b, codecKindSpan)
	return appendSpanBody(b, n)
}

func appendSpanBody(b []byte, n *SpanNode) []byte {
	if n == nil {
		n = &SpanNode{}
	}
	b = cputStr(b, n.Name)
	b = cputU64(b, uint64(n.StartOffset))
	b = cputU64(b, uint64(n.Duration))
	b = cputU64(b, math.Float64bits(n.Seconds))
	b = cputU32(b, uint32(len(n.Children)))
	for i := range n.Children {
		b = appendSpanBody(b, &n.Children[i])
	}
	return b
}

// spanMinRecord is the smallest possible encoded node (empty name, no
// children): the allocation bound for child counts from hostile input.
const spanMinRecord = 2 + 8 + 8 + 8 + 4

// maxSpanDepth bounds decode recursion against adversarial deep chains.
const maxSpanDepth = 1024

// DecodeSpanNode parses an encoded span tree, bounding child counts
// against the remaining payload and the nesting depth.
func DecodeSpanNode(b []byte) (*SpanNode, error) {
	d := &tdec{b: b}
	d.header(codecKindSpan)
	n := decodeSpanBody(d, 0)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("telemetry: %d trailing bytes in span", len(b)-d.off)
	}
	return n, nil
}

func decodeSpanBody(d *tdec, depth int) *SpanNode {
	if depth > maxSpanDepth {
		d.err = fmt.Errorf("telemetry: span tree deeper than %d", maxSpanDepth)
		return nil
	}
	n := &SpanNode{}
	n.Name = d.str()
	n.StartOffset = time.Duration(d.u64())
	n.Duration = time.Duration(d.u64())
	n.Seconds = math.Float64frombits(d.u64())
	nKids := d.u32()
	if d.err == nil && uint64(nKids)*spanMinRecord > uint64(d.remaining()) {
		d.err = fmt.Errorf("telemetry: implausible span child count %d", nKids)
		return nil
	}
	for i := uint32(0); i < nKids && d.err == nil; i++ {
		if c := decodeSpanBody(d, depth+1); c != nil {
			n.Children = append(n.Children, *c)
		}
	}
	return n
}

// Labeled returns a copy of s with every gauge's origin label set to
// server — the stamp a scanner applies before shipping its snapshot, so
// a merged cluster view can attribute each gauge maximum to the server
// that held it.
func (s Snapshot) Labeled(server string) Snapshot {
	out := Snapshot{
		Counters:   append([]CounterValue(nil), s.Counters...),
		Gauges:     append([]GaugeValue(nil), s.Gauges...),
		Histograms: append([]HistogramValue(nil), s.Histograms...),
	}
	for i := range out.Gauges {
		out.Gauges[i].Label = server
	}
	return out
}

// Histogram returns the named histogram in the snapshot (false when
// absent) — the lookup the cluster manifest's derived columns use.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// MergeSnapshots folds any number of per-server snapshots into one
// cluster snapshot: counters sum, gauges keep the labeled maximum
// (ties broken toward the lexicographically smaller label), histograms
// add bucket-wise over the union of their bounds. The result is
// canonical (name-sorted) and permutation-invariant: merging the same
// snapshots in any order yields byte-identical encodings, because every
// per-instrument operation is commutative and float sums are
// accumulated in sorted order.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	counters := make(map[string]int64)
	type gmax struct {
		v     int64
		label string
		set   bool
	}
	gauges := make(map[string]*gmax)
	type hacc struct {
		buckets map[float64]int64
		inf     int64
		sums    []float64
		count   int64
	}
	hists := make(map[string]*hacc)

	for _, s := range snaps {
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			cur := gauges[g.Name]
			if cur == nil {
				cur = &gmax{}
				gauges[g.Name] = cur
			}
			// Max under the total order (value desc, label asc): taking
			// the maximum of a total order is commutative+associative.
			if !cur.set || g.Value > cur.v || (g.Value == cur.v && g.Label < cur.label) {
				*cur = gmax{v: g.Value, label: g.Label, set: true}
			}
		}
		for _, h := range s.Histograms {
			a := hists[h.Name]
			if a == nil {
				a = &hacc{buckets: make(map[float64]int64)}
				hists[h.Name] = a
			}
			for i, ub := range h.Bounds {
				if i < len(h.Counts) {
					a.buckets[ub] += h.Counts[i]
				}
			}
			if len(h.Counts) > len(h.Bounds) {
				a.inf += h.Counts[len(h.Bounds)]
			}
			if len(h.sumTerms) > 0 {
				a.sums = append(a.sums, h.sumTerms...)
			} else {
				a.sums = append(a.sums, h.Sum)
			}
			a.count += h.Count
		}
	}

	var out Snapshot
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: v})
	}
	for name, g := range gauges {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: g.v, Label: g.label})
	}
	for name, a := range hists {
		hv := HistogramValue{Name: name, Count: a.count}
		for ub := range a.buckets {
			hv.Bounds = append(hv.Bounds, ub)
		}
		sort.Float64s(hv.Bounds)
		hv.Counts = make([]int64, len(hv.Bounds)+1)
		for i, ub := range hv.Bounds {
			hv.Counts[i] = a.buckets[ub]
		}
		hv.Counts[len(hv.Bounds)] = a.inf
		// Float sums folded in sorted order over the full multiset of
		// constituent terms: permutation- and grouping-invariant to the
		// bit (the terms ride along for any further merge).
		sort.Float64s(a.sums)
		for _, v := range a.sums {
			hv.Sum += v
		}
		hv.sumTerms = a.sums
		out.Histograms = append(out.Histograms, hv)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}
