package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJournalRecordSnapshot: events come back oldest-first with their
// components, kinds and ordered attrs intact, and the snapshot carries
// the server label and wall-clock base.
func TestJournalRecordSnapshot(t *testing.T) {
	j := NewJournal(16)
	j.SetServer("ost1")
	j.Record("wire", "dial", "server", "ost1", "retries", "2")
	j.Record("scanner", "scan-start")
	j.Record("scanner", "scan-done", "inodes", "42", "dangling") // odd kv: dangling key

	s := j.Snapshot()
	if s.Server != "ost1" {
		t.Fatalf("server %q", s.Server)
	}
	if s.Base == 0 {
		t.Fatal("zero base")
	}
	if s.Dropped != 0 || len(s.Events) != 3 {
		t.Fatalf("dropped %d events %d", s.Dropped, len(s.Events))
	}
	e := s.Events[0]
	if e.Component != "wire" || e.Kind != "dial" || e.Attr("server") != "ost1" || e.Attr("retries") != "2" {
		t.Fatalf("event 0: %+v", e)
	}
	if got := s.Events[2].Attr("dangling"); got != "" {
		t.Fatalf("dangling key value %q", got)
	}
	if len(s.Events[2].Attrs) != 2 {
		t.Fatalf("odd kv attrs: %+v", s.Events[2].Attrs)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].T < s.Events[i-1].T {
			t.Fatalf("events out of time order at %d", i)
		}
	}
	if w := s.Wall(e); w != s.Base+int64(e.T) {
		t.Fatalf("Wall %d", w)
	}
}

// TestJournalRingBounds: the ring overwrites oldest-first and counts
// the overwrites, so the surviving window is the most recent history.
func TestJournalRingBounds(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record("c", "k", "i", string(rune('0'+i)))
	}
	s := j.Snapshot()
	if s.Dropped != 6 || j.Dropped() != 6 {
		t.Fatalf("dropped %d / %d, want 6", s.Dropped, j.Dropped())
	}
	if len(s.Events) != 4 {
		t.Fatalf("%d events, want 4", len(s.Events))
	}
	for i, e := range s.Events {
		if want := string(rune('0' + 6 + i)); e.Attr("i") != want {
			t.Fatalf("event %d is %q, want %q", i, e.Attr("i"), want)
		}
		if i > 0 && e.T < s.Events[i-1].T {
			t.Fatalf("wrapped events out of time order at %d", i)
		}
	}
}

// TestJournalNilTolerant: every method on a nil journal and nil sampler
// is a no-op, like the Registry's instruments.
func TestJournalNilTolerant(t *testing.T) {
	var j *Journal
	j.SetServer("x")
	j.Record("c", "k", "a", "b")
	if j.Dropped() != 0 {
		t.Fatal("nil Dropped")
	}
	if s := j.Snapshot(); s.Server != "" || len(s.Events) != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
	sm := j.Sampler(8)
	if sm != nil {
		t.Fatal("nil journal must hand out a nil sampler")
	}
	sm.Record("c", "k")
}

// TestJournalConcurrent exercises concurrent recorders and snapshotters
// under -race: no event is torn and snapshots stay time-ordered.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Record("c", "k", "g", "x")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := j.Snapshot()
			for k := 1; k < len(s.Events); k++ {
				if s.Events[k].T < s.Events[k-1].T {
					t.Error("concurrent snapshot out of time order")
					return
				}
			}
		}
	}()
	wg.Wait()
	s := j.Snapshot()
	if len(s.Events) != 128 || s.Dropped != 8*200-128 {
		t.Fatalf("events %d dropped %d", len(s.Events), s.Dropped)
	}
}

// TestSamplerEvery: one record per N calls, first call always recorded.
func TestSamplerEvery(t *testing.T) {
	j := NewJournal(64)
	sm := j.Sampler(3)
	for i := 0; i < 10; i++ {
		sm.Record("scanner", "chunk")
	}
	if n := len(j.Snapshot().Events); n != 4 { // calls 1, 4, 7, 10
		t.Fatalf("%d sampled events, want 4", n)
	}
	all := j.Sampler(0) // <1 clamps to every call
	all.Record("c", "k")
	if n := len(j.Snapshot().Events); n != 5 {
		t.Fatalf("%d events after every=0 sampler, want 5", n)
	}
}

// journalFixture builds a deterministic two-section snapshot set.
func journalFixture() []JournalSnapshot {
	return []JournalSnapshot{
		{
			Server: "ost1", Base: 1_700_000_000_000_000_000, Dropped: 3,
			Events: []Event{
				{T: 10, Component: "scanner", Kind: "scan-start"},
				{T: 25, Component: "wire", Kind: "slow-frame", Attrs: []Attr{{K: "seconds", V: "0.4"}}},
				{T: 25, Component: "scanner", Kind: "scan-done", Attrs: []Attr{{K: "inodes", V: "9"}, {K: "", V: "odd"}}},
			},
		},
		{
			Server: "coordinator", Base: 1_700_000_000_000_000_500,
			Events: []Event{{T: 1, Component: "checker", Kind: "run"}},
		},
	}
}

// TestJournalCodecRoundTrip: encode → decode → byte-identical re-encode,
// with sections canonicalised by server and all fields preserved.
func TestJournalCodecRoundTrip(t *testing.T) {
	blob := EncodeJournal(journalFixture())
	dec, err := DecodeJournal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0].Server != "coordinator" || dec[1].Server != "ost1" {
		t.Fatalf("decoded sections: %+v", dec)
	}
	if dec[1].Dropped != 3 || len(dec[1].Events) != 3 {
		t.Fatalf("ost1 section: %+v", dec[1])
	}
	if got := dec[1].Events[1].Attr("seconds"); got != "0.4" {
		t.Fatalf("attr: %q", got)
	}
	if !bytes.Equal(EncodeJournal(dec), blob) {
		t.Fatal("re-encode not byte-identical")
	}

	// The empty container is valid and canonical too.
	empty := EncodeJournal(nil)
	dec, err = DecodeJournal(empty)
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty blob: %v %v", dec, err)
	}
}

// TestJournalCodecLiveRoundTrip: a real journal's snapshot survives the
// codec byte-identically.
func TestJournalCodecLiveRoundTrip(t *testing.T) {
	j := NewJournal(8)
	j.SetServer("mdt0")
	j.Record("agg", "merge-done", "vertices", "100")
	j.Record("rank", "iteration", "i", "1", "delta", "0.5")
	blob := EncodeJournal([]JournalSnapshot{j.Snapshot()})
	dec, err := DecodeJournal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeJournal(dec), blob) {
		t.Fatal("re-encode not byte-identical")
	}
}

// TestJournalCodecRejects: hostile or non-canonical blobs fail loudly
// instead of misparsing.
func TestJournalCodecRejects(t *testing.T) {
	good := EncodeJournal(journalFixture())

	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"bad magic", append([]byte("FRXX"), good[4:]...), "magic"},
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}(), "version"},
		{"trailing bytes", append(append([]byte(nil), good...), 0), "trailing"},
		{"truncated", good[:len(good)-3], "truncated"},
		{"implausible sections", func() []byte {
			b := append([]byte(nil), journalMagic[:]...)
			b = append(b, JournalCodecVersion)
			return cputU32(b, 0xFFFFFF)
		}(), "implausible"},
		{"implausible events", func() []byte {
			b := append([]byte(nil), journalMagic[:]...)
			b = append(b, JournalCodecVersion)
			b = cputU32(b, 1)
			b = cputStr(b, "s")
			b = cputU64(b, 0)
			b = cputU64(b, 0)
			b = cputU32(b, 0xFFFFFF) // event count far beyond payload
			return append(b, make([]byte, 64)...)
		}(), "implausible"},
		{"sections out of order", func() []byte {
			secs := []JournalSnapshot{{Server: "b"}, {Server: "a"}}
			b := EncodeJournal(secs) // canonicalises...
			// ...so corrupt the order by swapping the encoded names.
			return bytes.Replace(bytes.Replace(bytes.Replace(b,
				[]byte("a"), []byte("z"), 1), []byte("b"), []byte("a"), 1), []byte("z"), []byte("b"), 1)
		}(), "canonical order"},
		{"events out of order", func() []byte {
			b := append([]byte(nil), journalMagic[:]...)
			b = append(b, JournalCodecVersion)
			b = cputU32(b, 1)
			b = cputStr(b, "s")
			b = cputU64(b, 0)
			b = cputU64(b, 0)
			b = cputU32(b, 2)
			for _, ts := range []uint64{50, 10} { // descending T
				b = cputU64(b, ts)
				b = cputStr(b, "c")
				b = cputStr(b, "k")
				b = append(b, 0)
			}
			return b
		}(), "time order"},
	}
	for _, tc := range cases {
		if _, err := DecodeJournal(tc.blob); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestWriteReadJournalFile: the .frjr dump round-trips through disk.
func TestWriteReadJournalFile(t *testing.T) {
	path := t.TempDir() + "/journal.frjr"
	want := journalFixture()
	if err := WriteJournalFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Server != "coordinator" || len(got[1].Events) != 3 {
		t.Fatalf("file round-trip: %+v", got)
	}
}

// FuzzDecodeJournal drives the FRJR decoder with hostile bytes. The
// invariant is bijectivity: any payload either fails to decode, or
// decodes to sections whose re-encoding is byte-identical to the input
// and decodes again identically. Counts are bounded before allocation,
// so implausible headers fail fast instead of OOMing.
func FuzzDecodeJournal(f *testing.F) {
	f.Add(EncodeJournal(journalFixture()))
	f.Add(EncodeJournal(nil))
	j := NewJournal(4)
	j.SetServer("ost0")
	for i := 0; i < 6; i++ {
		j.Record("wire", "dial-retry", "server", "ost0")
	}
	f.Add(EncodeJournal([]JournalSnapshot{j.Snapshot()}))
	// Implausible section count.
	hostile := append([]byte(nil), journalMagic[:]...)
	hostile = append(hostile, JournalCodecVersion)
	f.Add(cputU32(hostile, 0xFFFFFFFF))

	f.Fuzz(func(t *testing.T, b []byte) {
		secs, err := DecodeJournal(b)
		if err != nil {
			return
		}
		re := EncodeJournal(secs)
		if !bytes.Equal(re, b) {
			t.Fatalf("decode-ok blob did not re-encode byte-identically:\n in %x\nout %x", b, re)
		}
		again, err := DecodeJournal(re)
		if err != nil {
			t.Fatalf("re-encoded blob failed to decode: %v", err)
		}
		if len(again) != len(secs) {
			t.Fatalf("re-decode section count %d != %d", len(again), len(secs))
		}
	})
}

// TestJournalTimeMonotonic: offsets derive from the monotonic clock —
// a recorded event's T is never negative and grows with real time.
func TestJournalTimeMonotonic(t *testing.T) {
	j := NewJournal(4)
	j.Record("c", "a")
	time.Sleep(2 * time.Millisecond)
	j.Record("c", "b")
	s := j.Snapshot()
	if s.Events[0].T < 0 || s.Events[1].T < s.Events[0].T+time.Millisecond {
		t.Fatalf("timestamps: %v %v", s.Events[0].T, s.Events[1].T)
	}
}
