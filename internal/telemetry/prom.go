package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series. Counter names
// get the conventional _total suffix when the instrument name lacks it,
// gauges with an origin label render it as a server="..." label pair,
// and instrument names are sanitized to the Prometheus charset; the
// snapshot's sorted order makes the output deterministic.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		series := name
		if g.Label != "" {
			series = fmt.Sprintf("%s{server=%q}", name, g.Label)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, series, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, ub := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(ub), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			name, formatBound(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a float without the exponent forms Prometheus
// tooling trips over for common bucket edges.
func formatBound(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promName maps an instrument name onto the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other byte with '_'.
func promName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
