package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series. Counter names
// get the conventional _total suffix when the instrument name lacks it,
// gauges with an origin label render it as a server="..." label pair,
// and instrument names are sanitized to the Prometheus charset; the
// snapshot's sorted order makes the output deterministic.
func WritePrometheus(w io.Writer, s Snapshot) error {
	return writeSnapshot(w, s, "", make(map[string]bool))
}

// LabeledSnapshot pairs one registry snapshot with the label value it
// is exposed under — one entry per cluster in a multi-cluster gather.
type LabeledSnapshot struct {
	Label    string
	Snapshot Snapshot
}

// WritePrometheusLabeled renders many snapshots into one exposition,
// tagging every series of each snapshot with key="label" — the
// fleet-health daemon's sustained per-cluster exposition. Each metric's
// TYPE line is emitted once (before its first series) even when the
// metric recurs across snapshots, as the exposition format requires;
// series order follows the given snapshot order, so a sorted input
// renders deterministically.
func WritePrometheusLabeled(w io.Writer, key string, snaps []LabeledSnapshot) error {
	typeSeen := make(map[string]bool)
	for _, ls := range snaps {
		extra := ""
		if key != "" && ls.Label != "" {
			extra = fmt.Sprintf("%s=%q", promName(key), ls.Label)
		}
		if err := writeSnapshot(w, ls.Snapshot, extra, typeSeen); err != nil {
			return err
		}
	}
	return nil
}

// writeSnapshot renders one snapshot, prefixing every series' label set
// with extra (a pre-rendered `key="value"` pair, empty for none) and
// emitting each metric's TYPE line only on first sight across the whole
// exposition (typeSeen is shared by multi-snapshot writers).
func writeSnapshot(w io.Writer, s Snapshot, extra string, typeSeen map[string]bool) error {
	typeLine := func(name, kind string) string {
		if typeSeen[name] {
			return ""
		}
		typeSeen[name] = true
		return fmt.Sprintf("# TYPE %s %s\n", name, kind)
	}
	series := func(name string, pairs ...string) string {
		var kept []string
		if extra != "" {
			kept = append(kept, extra)
		}
		for _, p := range pairs {
			if p != "" {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			return name
		}
		return name + "{" + strings.Join(kept, ",") + "}"
	}
	for _, c := range s.Counters {
		name := promName(c.Name)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", typeLine(name, "counter"), series(name), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		pair := ""
		if g.Label != "" {
			pair = fmt.Sprintf("server=%q", g.Label)
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", typeLine(name, "gauge"), series(name, pair), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := io.WriteString(w, typeLine(name, "histogram")); err != nil {
			return err
		}
		var cum int64
		for i, ub := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s %d\n",
				series(name+"_bucket", fmt.Sprintf("le=%q", formatBound(ub))), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s %d\n", series(name+"_bucket", `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
			series(name+"_sum"), formatBound(h.Sum), series(name+"_count"), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a float without the exponent forms Prometheus
// tooling trips over for common bucket edges.
func formatBound(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promName maps an instrument name onto the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other byte with '_'.
func promName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
