package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// PromContentType is the versioned Content-Type the /metrics endpoint
// answers with, per the Prometheus text exposition conventions.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves a registry over HTTP: GET /metrics renders the
// Prometheus text format, and /debug/pprof/... exposes the standard
// runtime profiles. The pprof handlers are registered on this private
// mux, not http.DefaultServeMux, so importing telemetry never leaks
// profiling endpoints into an application's own server.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics endpoint on addr (":9090", "127.0.0.1:0",
// …) and returns the bound address plus a stop function. The server
// runs until stop is called; a CLI typically defers stop and lets the
// endpoint live exactly as long as the run it observes.
func Serve(addr string, r *Registry) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
