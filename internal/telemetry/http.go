package telemetry

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PromContentType is the versioned Content-Type the /metrics endpoint
// answers with, per the Prometheus text exposition conventions.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves a registry over HTTP: GET /metrics renders the
// Prometheus text format, and /debug/pprof/... exposes the standard
// runtime profiles. The pprof handlers are registered on this private
// mux, not http.DefaultServeMux, so importing telemetry never leaks
// profiling endpoints into an application's own server.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeHandler starts an HTTP server for h on addr (":9090",
// "127.0.0.1:0", …) and returns the bound address plus a graceful stop:
// calling stop drains in-flight requests via http.Server.Shutdown until
// its context expires, then force-closes whatever remains. It is the
// shared server lifecycle of the -metrics-addr endpoint and the
// fleet-health daemon — a scrape in progress when the process receives
// its shutdown signal completes instead of seeing a reset connection.
func ServeHandler(addr string, h http.Handler) (boundAddr string, stop func(context.Context) error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func(ctx context.Context) error {
		if err := srv.Shutdown(ctx); err != nil {
			// Drain window expired (or ctx was already cancelled): cut
			// the stragglers so stop never leaks the listener.
			_ = srv.Close()
			if !errors.Is(err, http.ErrServerClosed) {
				return err
			}
		}
		return nil
	}, nil
}

// ServeStopTimeout bounds how long Serve's stop function waits for
// in-flight scrapes before force-closing.
const ServeStopTimeout = 5 * time.Second

// Serve starts the metrics endpoint on addr and returns the bound
// address plus a stop function. The server runs until stop is called; a
// CLI typically defers stop and lets the endpoint live exactly as long
// as the run it observes. Stop shuts down gracefully (bounded by
// ServeStopTimeout), so a scrape racing process exit completes.
func Serve(addr string, r *Registry) (boundAddr string, stop func() error, err error) {
	bound, stopCtx, err := ServeHandler(addr, Handler(r))
	if err != nil {
		return "", nil, err
	}
	return bound, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), ServeStopTimeout)
		defer cancel()
		return stopCtx(ctx)
	}, nil
}
