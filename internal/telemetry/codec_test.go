package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		Counters: []CounterValue{
			{Name: "scanner_inodes_scanned_total", Value: 4096},
			{Name: "wire_bytes_sent_total", Value: 1 << 20},
			{Name: "wire_frames_sent_total", Value: 37},
		},
		Gauges: []GaugeValue{
			{Name: "agg_interner_size", Value: 812, Label: "ost3"},
		},
		Histograms: []HistogramValue{
			{
				Name:   "wire_frame_write_seconds",
				Bounds: []float64{0.001, 0.01, 0.1},
				Counts: []int64{10, 5, 2, 1},
				Sum:    0.731,
				Count:  18,
			},
		},
	}
}

func TestSnapshotCodecRoundtrip(t *testing.T) {
	s := sampleSnapshot()
	enc := EncodeSnapshot(s)
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	re := EncodeSnapshot(got)
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encode differs:\n  %x\n  %x", enc, re)
	}
	if got.Counter("wire_frames_sent_total") != 37 {
		t.Fatalf("counter lost: %+v", got.Counters)
	}
	if got.Gauge("agg_interner_size") != 812 {
		t.Fatalf("gauge lost: %+v", got.Gauges)
	}
	h, ok := got.Histogram("wire_frame_write_seconds")
	if !ok || h.Count != 18 || h.Sum != 0.731 || len(h.Counts) != 4 {
		t.Fatalf("histogram lost: %+v ok=%v", h, ok)
	}
	if got.Gauges[0].Label != "ost3" {
		t.Fatalf("gauge label lost: %+v", got.Gauges[0])
	}
}

func TestSnapshotCodecEmptyRoundtrip(t *testing.T) {
	enc := EncodeSnapshot(Snapshot{})
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(got.Counters)+len(got.Gauges)+len(got.Histograms) != 0 {
		t.Fatalf("empty snapshot decoded non-empty: %+v", got)
	}
}

// Encoding canonicalises unsorted input, so decode(encode(x)) is stable
// regardless of the order instruments were handed over in.
func TestSnapshotEncodeCanonicalises(t *testing.T) {
	a := sampleSnapshot()
	b := sampleSnapshot()
	for i, j := 0, len(b.Counters)-1; i < j; i, j = i+1, j-1 {
		b.Counters[i], b.Counters[j] = b.Counters[j], b.Counters[i]
	}
	if !bytes.Equal(EncodeSnapshot(a), EncodeSnapshot(b)) {
		t.Fatal("encoding is order-sensitive; canonicalisation broken")
	}
}

func TestSnapshotDecodeRejects(t *testing.T) {
	valid := EncodeSnapshot(sampleSnapshot())
	cases := map[string][]byte{
		"empty":    {},
		"shortHdr": valid[:3],
		"badMagic": append([]byte("XXXX"), valid[4:]...),
		"badVer": func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = 99
			return b
		}(),
		"wrongKind": func() []byte {
			b := append([]byte(nil), valid...)
			b[5] = codecKindSpan
			return b
		}(),
		"truncated": valid[:len(valid)-3],
		"trailing":  append(append([]byte(nil), valid...), 0xAB),
	}
	for name, b := range cases {
		if _, err := DecodeSnapshot(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// Non-canonical payloads (out-of-order or duplicate names, unsorted
// bounds) must be rejected: that is what makes decode→encode the
// identity and lets the wire fuzz target assert bijectivity.
func TestSnapshotDecodeRejectsNonCanonical(t *testing.T) {
	unsorted := Snapshot{Counters: []CounterValue{{Name: "b", Value: 1}, {Name: "a", Value: 2}}}
	// Build the wire form by hand so sorting in Encode can't save it.
	raw := appendHeader(nil, codecKindSnapshot)
	raw = cputU32(raw, 2)
	for _, c := range unsorted.Counters {
		raw = cputStr(raw, c.Name)
		raw = cputU64(raw, uint64(c.Value))
	}
	raw = cputU32(raw, 0)
	raw = cputU32(raw, 0)
	if _, err := DecodeSnapshot(raw); err == nil {
		t.Error("decode accepted out-of-order counters")
	}

	dup := appendHeader(nil, codecKindSnapshot)
	dup = cputU32(dup, 2)
	for i := 0; i < 2; i++ {
		dup = cputStr(dup, "same")
		dup = cputU64(dup, 7)
	}
	dup = cputU32(dup, 0)
	dup = cputU32(dup, 0)
	if _, err := DecodeSnapshot(dup); err == nil {
		t.Error("decode accepted duplicate counter names")
	}

	badBounds := appendHeader(nil, codecKindSnapshot)
	badBounds = cputU32(badBounds, 0)
	badBounds = cputU32(badBounds, 0)
	badBounds = cputU32(badBounds, 1)
	badBounds = cputStr(badBounds, "h")
	badBounds = cputU32(badBounds, 2)
	badBounds = cputU64(badBounds, math.Float64bits(2.0))
	badBounds = cputU64(badBounds, math.Float64bits(1.0)) // descending
	for i := 0; i < 3; i++ {
		badBounds = cputU64(badBounds, 0)
	}
	badBounds = cputU64(badBounds, 0)
	badBounds = cputU64(badBounds, 0)
	if _, err := DecodeSnapshot(badBounds); err == nil {
		t.Error("decode accepted descending histogram bounds")
	}
}

// A lying header claiming huge instrument counts must fail fast without
// allocating proportionally to the claim.
func TestSnapshotDecodeBoundedAllocation(t *testing.T) {
	lies := [][]byte{
		func() []byte { // huge counter count, no payload behind it
			b := appendHeader(nil, codecKindSnapshot)
			return cputU32(b, 0xFFFFFFFF)
		}(),
		func() []byte { // huge histogram bound count
			b := appendHeader(nil, codecKindSnapshot)
			b = cputU32(b, 0)
			b = cputU32(b, 0)
			b = cputU32(b, 1)
			b = cputStr(b, "h")
			return cputU32(b, 0x10000000)
		}(),
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, b := range lies {
		if _, err := DecodeSnapshot(b); err == nil {
			t.Fatal("decode accepted lying header")
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("lying headers caused %d bytes of allocation", grew)
	}
}

func TestSpanCodecRoundtrip(t *testing.T) {
	n := &SpanNode{
		Name:     "run",
		Duration: 5 * time.Second,
		Seconds:  5.0,
		Children: []SpanNode{
			{Name: "scan", StartOffset: time.Millisecond, Duration: 3 * time.Second, Seconds: 3.0,
				Children: []SpanNode{{Name: "scan:ost0", Duration: time.Second, Seconds: 1.0}}},
			{Name: "aggregate", StartOffset: 3 * time.Second, Duration: time.Second, Seconds: 1.0},
		},
	}
	enc := EncodeSpanNode(n)
	got, err := DecodeSpanNode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(enc, EncodeSpanNode(got)) {
		t.Fatal("span re-encode differs")
	}
	if got.Find("scan:ost0") == nil || got.Find("aggregate") == nil {
		t.Fatalf("span tree lost nodes: %+v", got)
	}
}

func TestSpanDecodeRejects(t *testing.T) {
	valid := EncodeSpanNode(&SpanNode{Name: "x"})
	if _, err := DecodeSpanNode(valid[:len(valid)-1]); err == nil {
		t.Error("decode accepted truncated span")
	}
	if _, err := DecodeSpanNode(append(append([]byte(nil), valid...), 1)); err == nil {
		t.Error("decode accepted trailing bytes")
	}
	// Lying child count.
	lie := appendHeader(nil, codecKindSpan)
	lie = cputStr(lie, "n")
	lie = cputU64(lie, 0)
	lie = cputU64(lie, 0)
	lie = cputU64(lie, 0)
	lie = cputU32(lie, 0xFFFFFF)
	if _, err := DecodeSpanNode(lie); err == nil {
		t.Error("decode accepted lying child count")
	}
}

func serverSnapshots() []Snapshot {
	snaps := make([]Snapshot, 0, 8)
	for i := 0; i < 8; i++ {
		r := NewRegistry()
		r.Counter("scanner_inodes_scanned_total").Add(int64(1000 + i*137))
		r.Counter("wire_frames_sent_total").Add(int64(10 + i))
		r.Counter("wire_bytes_sent_total").Add(int64(1<<16 + i*4096))
		r.Gauge("agg_interner_size").Set(int64(500 + (i*263)%400))
		h := r.Histogram("wire_frame_write_seconds", nil)
		for j := 0; j < 20+i; j++ {
			h.Observe(float64(j%7) * 0.003)
		}
		label := []string{"mdt0", "ost0", "ost1", "ost2", "ost3", "ost4", "ost5", "ost6"}[i]
		snaps = append(snaps, r.Snapshot().Labeled(label))
	}
	return snaps
}

// The merge laws: merging N per-server snapshots in any order (and any
// associativity, via pairwise folds) yields a byte-identical result.
func TestMergeSnapshotsPermutationInvariant(t *testing.T) {
	snaps := serverSnapshots()
	want := EncodeSnapshot(MergeSnapshots(snaps...))

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(snaps))
		shuffled := make([]Snapshot, len(snaps))
		for i, p := range perm {
			shuffled[i] = snaps[p]
		}
		if got := EncodeSnapshot(MergeSnapshots(shuffled...)); !bytes.Equal(got, want) {
			t.Fatalf("trial %d (perm %v): merge is order-sensitive", trial, perm)
		}
		// Associativity: fold left pairwise vs fold in one shot. Each
		// pairwise merge re-canonicalises, so any grouping must agree.
		acc := shuffled[0]
		for _, s := range shuffled[1:] {
			acc = MergeSnapshots(acc, s)
		}
		if got := EncodeSnapshot(acc); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: pairwise fold differs from flat merge", trial)
		}
	}
}

func TestMergeSnapshotsSemantics(t *testing.T) {
	snaps := serverSnapshots()
	m := MergeSnapshots(snaps...)

	var wantInodes int64
	var maxGauge int64
	var maxLabel string
	for _, s := range snaps {
		wantInodes += s.Counter("scanner_inodes_scanned_total")
		if v := s.Gauge("agg_interner_size"); v > maxGauge {
			maxGauge = v
			maxLabel = s.Gauges[0].Label
		}
	}
	if got := m.Counter("scanner_inodes_scanned_total"); got != wantInodes {
		t.Errorf("counter sum = %d, want %d", got, wantInodes)
	}
	var g *GaugeValue
	for i := range m.Gauges {
		if m.Gauges[i].Name == "agg_interner_size" {
			g = &m.Gauges[i]
		}
	}
	if g == nil || g.Value != maxGauge || g.Label != maxLabel {
		t.Errorf("gauge max = %+v, want value %d label %q", g, maxGauge, maxLabel)
	}

	var wantCount int64
	for _, s := range snaps {
		h, _ := s.Histogram("wire_frame_write_seconds")
		wantCount += h.Count
	}
	h, ok := m.Histogram("wire_frame_write_seconds")
	if !ok || h.Count != wantCount {
		t.Errorf("histogram count = %d (ok=%v), want %d", h.Count, ok, wantCount)
	}
	var bucketTotal int64
	for _, c := range h.Counts {
		bucketTotal += c
	}
	if bucketTotal != wantCount {
		t.Errorf("bucket totals %d disagree with count %d", bucketTotal, wantCount)
	}
}

// Merging histograms whose bounds differ must take the union of bounds,
// keeping per-bucket counts attached to their own upper edge.
func TestMergeSnapshotsBoundUnion(t *testing.T) {
	a := Snapshot{Histograms: []HistogramValue{{
		Name: "h", Bounds: []float64{1, 10}, Counts: []int64{3, 2, 1}, Sum: 12, Count: 6,
	}}}
	b := Snapshot{Histograms: []HistogramValue{{
		Name: "h", Bounds: []float64{5, 10}, Counts: []int64{4, 0, 2}, Sum: 30, Count: 6,
	}}}
	m := MergeSnapshots(a, b)
	h, ok := m.Histogram("h")
	if !ok {
		t.Fatal("merged histogram missing")
	}
	wantBounds := []float64{1, 5, 10}
	if len(h.Bounds) != 3 || h.Bounds[0] != 1 || h.Bounds[1] != 5 || h.Bounds[2] != 10 {
		t.Fatalf("bounds = %v, want %v", h.Bounds, wantBounds)
	}
	want := []int64{3, 4, 2, 3} // 1:3, 5:4, 10:2+0, +Inf:1+2
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Count != 12 || h.Sum != 42 {
		t.Fatalf("count/sum = %d/%v, want 12/42", h.Count, h.Sum)
	}
}
