package telemetry

import (
	"context"
	"sync"
	"time"
)

// A Span times one phase of a run. Spans nest: starting a span under a
// context that already carries one attaches the new span as a child, so
// a run's phases assemble into a tree (scan → per-server streams,
// aggregate → merge/build, …) that Node() snapshots for reports and
// manifests.
//
// Spans are safe for concurrent use — parallel scanners all start
// children under the same parent — and tolerate a nil receiver, like
// the rest of the package.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	ended    bool
	children []*Span
}

type spanKey struct{}

// StartSpan begins a span named name. If ctx already carries a span the
// new one becomes its child; either way the returned context carries
// the new span, so the nesting follows the call tree without explicit
// plumbing. End the span when the phase completes.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// End marks the span complete. Second and later calls are no-ops, so a
// deferred End after an explicit one is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's elapsed time — final once ended, running
// until then (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// SpanNode is the JSON-ready snapshot of one span: its offset from the
// tree's root start, its duration, and its children in start order.
// Durations marshal as nanoseconds (time.Duration's default), with the
// seconds mirror for human readers of the manifest.
type SpanNode struct {
	Name        string        `json:"name"`
	StartOffset time.Duration `json:"start_offset_ns"`
	Duration    time.Duration `json:"duration_ns"`
	Seconds     float64       `json:"seconds"`
	Children    []SpanNode    `json:"children,omitempty"`
}

// Node snapshots the span's subtree. Offsets are relative to this
// span's start (the usual caller is the run's root span, making the
// offsets run-relative). Unended spans report their running duration.
func (s *Span) Node() SpanNode {
	if s == nil {
		return SpanNode{}
	}
	return s.node(s.start)
}

func (s *Span) node(root time.Time) SpanNode {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	d := s.Duration()
	n := SpanNode{
		Name:        s.name,
		StartOffset: s.start.Sub(root),
		Duration:    d,
		Seconds:     d.Seconds(),
	}
	for _, c := range children {
		n.Children = append(n.Children, c.node(root))
	}
	return n
}

// Find returns the first node named name in a depth-first walk of the
// tree rooted at n, or nil — the report/test convenience accessor.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for i := range n.Children {
		if m := n.Children[i].Find(name); m != nil {
			return m
		}
	}
	return nil
}
