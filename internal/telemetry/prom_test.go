package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWritePrometheus: counters, gauges and histograms render in the
// text exposition format with cumulative buckets and sanitized names.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire_frames_sent_total").Add(42)
	r.Counter("bare_events").Add(3) // no _total in the instrument name
	r.Gauge("agg.interned-fids").Set(7)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE wire_frames_sent_total counter\nwire_frames_sent_total 42\n",
		"# TYPE bare_events_total counter\nbare_events_total 3\n",
		"# TYPE agg_interned_fids gauge\nagg_interned_fids 7\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "_total_total") {
		t.Errorf("suffix applied twice:\n%s", out)
	}
}

// TestWritePrometheusGaugeLabel: a merged snapshot's labeled gauge
// maximum renders with its origin server as a label pair.
func TestWritePrometheusGaugeLabel(t *testing.T) {
	s := Snapshot{Gauges: []GaugeValue{{Name: "agg_interner_size", Value: 99, Label: "ost5"}}}
	var b strings.Builder
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE agg_interner_size gauge\nagg_interner_size{server=\"ost5\"} 99\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}

// TestHandlerServesMetricsAndPprof: the HTTP handler exposes both the
// Prometheus endpoint and the pprof index.
func TestHandlerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("scanner_inodes_scanned_total").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header
	}
	body, hdr := get("/metrics")
	if !strings.Contains(body, "scanner_inodes_scanned_total 9") {
		t.Errorf("/metrics body: %s", body)
	}
	if ct := hdr.Get("Content-Type"); ct != PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, PromContentType)
	}
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ body lacks profiles: %.200s", body)
	}
}

// TestServe: the standalone server binds an ephemeral port, serves
// metrics, and stops cleanly.
func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	addr, stop, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "c_total 1") {
		t.Errorf("metrics body: %s", body)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after stop")
	}
}

// TestWriteJSONManifest: the manifest writes atomically and round-trips.
func TestWriteJSONManifest(t *testing.T) {
	m := NewRunManifest("faultyrank")
	m.Options = map[string]any{"workers": 4}
	m.Results["findings"] = 0
	path := filepath.Join(t.TempDir(), "run.json")
	if err := WriteJSON(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{ManifestSchema, `"tool": "faultyrank"`, `"workers": 4`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("manifest missing %q:\n%s", want, data)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}
