package telemetry

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// TestCounterExactUnderConcurrency: no increment is ever lost — G
// goroutines × N adds land exactly, for counters, gauges and histogram
// counts/sums alike. Run under -race in CI.
func TestCounterExactUnderConcurrency(t *testing.T) {
	const goroutines, perG = 16, 10_000
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.5, 1.5})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(2)
				h.Observe(1) // second bucket
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter lost increments: %d != %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 2*goroutines*perG {
		t.Errorf("gauge lost adds: %d != %d", got, 2*goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram lost observations: %d != %d", got, goroutines*perG)
	}
	if got := h.Sum(); got != float64(goroutines*perG) {
		t.Errorf("histogram sum drifted: %g != %d", got, goroutines*perG)
	}
	snap := r.Snapshot()
	if snap.Histograms[0].Counts[1] != goroutines*perG {
		t.Errorf("bucket counts = %v, want all mass in bucket 1", snap.Histograms[0].Counts)
	}
}

// TestRegistryGetOrCreate: the same name always yields the same
// instrument, and concurrent first lookups agree on one instance.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	results := make([]*Counter, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Counter("shared")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent lookups created distinct counters")
		}
	}
	if r.Counter("shared") != results[0] {
		t.Fatal("later lookup returned a different counter")
	}
}

// TestSnapshotDeterministic: equal registry states snapshot
// identically, with instruments sorted by name regardless of creation
// order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("z_gauge").Set(7)
		r.Gauge("a_gauge").Set(3)
		r.Histogram("lat", []float64{1, 2}).Observe(1.5)
		return r.Snapshot()
	}
	a := build([]string{"beta", "alpha", "gamma"})
	b := build([]string{"gamma", "beta", "alpha"})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", a, b)
	}
	for i := 1; i < len(a.Counters); i++ {
		if a.Counters[i-1].Name >= a.Counters[i].Name {
			t.Fatalf("counters not sorted: %+v", a.Counters)
		}
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("JSON renderings differ for equal state")
	}
}

// TestNilSafety: every instrument and the registry itself tolerate nil
// — the uninstrumented path must be safe without conditionals at call
// sites.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported nonzero values")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if snap.Counter("x") != 0 || snap.Gauge("x") != 0 {
		t.Fatal("missing instruments must read as zero")
	}
	var s *Span
	s.End()
	if s.Duration() != 0 || s.Name() != "" {
		t.Fatal("nil span misbehaved")
	}
	if n := s.Node(); n.Name != "" || len(n.Children) != 0 {
		t.Fatal("nil span produced a node")
	}
}

// TestHistogramBuckets: observations land in the right buckets,
// including the implicit +Inf overflow.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 2} // (..1], (1..10], (10..100], (100..)
	got := make([]int64, len(h.counts))
	for i := range h.counts {
		got[i] = h.counts[i].Load()
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+5+50+500+5000 {
		t.Fatalf("sum = %g", h.Sum())
	}
}
