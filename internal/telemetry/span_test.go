package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSpanTreeNesting: spans started under a parent's context attach as
// children, in order, and the snapshot mirrors the call tree.
func TestSpanTreeNesting(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "run")
	sctx, scan := StartSpan(ctx, "scan")
	_, s0 := StartSpan(sctx, "scan/mdt0")
	s0.End()
	_, s1 := StartSpan(sctx, "scan/ost0")
	s1.End()
	scan.End()
	_, rank := StartSpan(ctx, "rank")
	rank.End()
	root.End()

	n := root.Node()
	if n.Name != "run" || len(n.Children) != 2 {
		t.Fatalf("root node = %+v", n)
	}
	if n.Children[0].Name != "scan" || n.Children[1].Name != "rank" {
		t.Fatalf("child order = %s, %s", n.Children[0].Name, n.Children[1].Name)
	}
	sc := n.Find("scan")
	if sc == nil || len(sc.Children) != 2 {
		t.Fatalf("scan subtree = %+v", sc)
	}
	if sc.Children[0].Name != "scan/mdt0" || sc.Children[1].Name != "scan/ost0" {
		t.Fatalf("scan children = %+v", sc.Children)
	}
	if n.Find("nope") != nil {
		t.Fatal("Find invented a node")
	}
	if n.Duration < sc.Duration {
		t.Errorf("root duration %v < child duration %v", n.Duration, sc.Duration)
	}
	if n.Seconds != n.Duration.Seconds() {
		t.Errorf("seconds mirror diverges: %g vs %g", n.Seconds, n.Duration.Seconds())
	}
	if sc.StartOffset < 0 {
		t.Errorf("negative start offset %v", sc.StartOffset)
	}
}

// TestSpanConcurrentChildren: parallel scanners starting spans under
// one parent never lose a child (run under -race in CI).
func TestSpanConcurrentChildren(t *testing.T) {
	ctx, parent := StartSpan(context.Background(), "scan")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "child")
			s.End()
		}()
	}
	wg.Wait()
	parent.End()
	if got := len(parent.Node().Children); got != n {
		t.Fatalf("parent lost children: %d != %d", got, n)
	}
}

// TestSpanEndIdempotent: a second End does not move the recorded end
// time, and an unended span reports a running duration.
func TestSpanEndIdempotent(t *testing.T) {
	_, s := StartSpan(context.Background(), "x")
	s.End()
	d1 := s.Duration()
	time.Sleep(5 * time.Millisecond)
	s.End()
	if d2 := s.Duration(); d2 != d1 {
		t.Fatalf("second End moved the duration: %v -> %v", d1, d2)
	}
	_, open := StartSpan(context.Background(), "open")
	time.Sleep(time.Millisecond)
	if open.Duration() <= 0 {
		t.Fatal("unended span reported no running duration")
	}
}

// TestSpanConcurrentStartEndNode races the three span operations a live
// run overlaps: scanners starting children, phases ending, and the
// metrics endpoint snapshotting the tree mid-flight. Run under -race
// this is the span tree's thread-safety proof; the final snapshot must
// still see every child.
func TestSpanConcurrentStartEndNode(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "run")
	const workers, perWorker = 8, 25
	var starters, readers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotters: Node() while children start and end.
	for s := 0; s < 2; s++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = root.Node()
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		starters.Add(1)
		go func(w int) {
			defer starters.Done()
			for i := 0; i < perWorker; i++ {
				_, sp := StartSpan(ctx, fmt.Sprintf("child-%d-%d", w, i))
				sp.End()
				sp.End() // idempotent under concurrency too
			}
		}(w)
	}
	starters.Wait()
	close(stop)
	readers.Wait()
	root.End()
	node := root.Node()
	if got := len(node.Children); got != workers*perWorker {
		t.Fatalf("children: %d, want %d", got, workers*perWorker)
	}
}

// TestSpanNodeFindDeep covers Find on deep and missing paths: the first
// match in depth-first order wins, and absent names (or a nil receiver)
// return nil instead of panicking.
func TestSpanNodeFindDeep(t *testing.T) {
	deep := SpanNode{Name: "run", Children: []SpanNode{
		{Name: "scan", Children: []SpanNode{
			{Name: "scan:mdt0"},
			{Name: "scan:ost0", Children: []SpanNode{{Name: "leaf"}}},
		}},
		{Name: "aggregate", Children: []SpanNode{
			{Name: "merge"},
			{Name: "leaf"}, // depth-first: the scan-side leaf wins
		}},
	}}
	if n := deep.Find("leaf"); n == nil {
		t.Fatal("deep leaf not found")
	}
	if n := deep.Find("merge"); n == nil || n.Name != "merge" {
		t.Fatalf("merge: %+v", n)
	}
	// Depth-first priority: the leaf under scan:ost0 precedes the one
	// under aggregate, and both are distinct nodes.
	first := deep.Find("leaf")
	scanLeaf := &deep.Children[0].Children[1].Children[0]
	if first != scanLeaf {
		t.Fatal("Find did not return the depth-first match")
	}
	if deep.Find("no-such-span") != nil {
		t.Fatal("missing name matched")
	}
	var nilNode *SpanNode
	if nilNode.Find("anything") != nil {
		t.Fatal("nil receiver matched")
	}
	if deep.Find("run") != &deep {
		t.Fatal("root name did not match the root")
	}
}
