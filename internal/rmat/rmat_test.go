package rmat

import (
	"reflect"
	"testing"
)

func TestGenerateCounts(t *testing.T) {
	p := Graph500(10, 8, 42)
	if p.NumVertices() != 1024 || p.NumEdges() != 8192 {
		t.Fatalf("sizes: %d %d", p.NumVertices(), p.NumEdges())
	}
	edges := Generate(p, 4)
	if len(edges) != 8192 {
		t.Fatalf("edges = %d", len(edges))
	}
	n := uint32(p.NumVertices())
	for i, e := range edges {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge %d out of range: %+v", i, e)
		}
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	p := Graph500(12, 4, 7)
	a := Generate(p, 1)
	for _, w := range []int{2, 4, 9} {
		b := Generate(p, w)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d changed the output", w)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := Generate(Graph500(10, 4, 1), 0)
	b := Generate(Graph500(10, 4, 2), 0)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// TestSkewedDegreeDistribution: R-MAT with Graph500 parameters must be
// heavily skewed — the top 1% of vertices own far more than 1% of the
// edges (this is what distinguishes it from a uniform random graph).
func TestSkewedDegreeDistribution(t *testing.T) {
	p := Graph500(14, 8, 3)
	edges := Generate(p, 0)
	deg := make([]int, p.NumVertices())
	for _, e := range edges {
		deg[e.Src]++
	}
	// count edges owned by the top 1% of sources
	topN := p.NumVertices() / 100
	// partial selection: simple counting sort over degrees
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for _, d := range deg {
		hist[d]++
	}
	owned, vertices := 0, 0
	for d := maxDeg; d >= 0 && vertices < topN; d-- {
		take := hist[d]
		if vertices+take > topN {
			take = topN - vertices
		}
		vertices += take
		owned += take * d
	}
	frac := float64(owned) / float64(len(edges))
	if frac < 0.05 {
		t.Fatalf("top 1%% of vertices own only %.1f%% of edges — not skewed", frac*100)
	}
}

func TestNoiseZeroStillValid(t *testing.T) {
	p := Graph500(8, 4, 5)
	p.Noise = 0
	edges := Generate(p, 0)
	if len(edges) != int(p.NumEdges()) {
		t.Fatal("wrong edge count")
	}
}
