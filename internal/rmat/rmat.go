// Package rmat generates R-MAT graphs (Chakrabarti et al.) with the
// Graph500 parameters the paper uses for its scalability study (Table
// III: a=0.57, b=0.19, c=0.19, average degree 8, scales 23-26).
// Generation is deterministic for a given seed and parallel across
// workers, each owning a contiguous edge range with its own PRNG.
package rmat

import (
	"math/rand"

	"faultyrank/internal/graph"
	"faultyrank/internal/par"
)

// Params configures a generator run.
type Params struct {
	// A, B, C are the upper-left, upper-right and lower-left quadrant
	// probabilities; D = 1-A-B-C.
	A, B, C float64
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is the average out-degree: edges = EdgeFactor << Scale.
	EdgeFactor int
	// Seed makes runs reproducible.
	Seed int64
	// Noise perturbs the quadrant probabilities per level (the
	// "smoothing" used by Graph500 generators to avoid degree spikes);
	// 0 disables it. A typical value is 0.1.
	Noise float64
}

// Graph500 returns the paper's parameters at the given scale and degree.
func Graph500(scale, edgeFactor int, seed int64) Params {
	return Params{A: 0.57, B: 0.19, C: 0.19, Scale: scale, EdgeFactor: edgeFactor, Seed: seed, Noise: 0.1}
}

// NumVertices returns 2^Scale.
func (p Params) NumVertices() int { return 1 << p.Scale }

// NumEdges returns EdgeFactor * 2^Scale.
func (p Params) NumEdges() int64 { return int64(p.EdgeFactor) << p.Scale }

// Generate produces the edge list in parallel (workers <= 0 means
// GOMAXPROCS). The output is deterministic for fixed params, regardless
// of the worker count: each edge index derives its own PRNG stream.
func Generate(p Params, workers int) []graph.Edge {
	m := p.NumEdges()
	edges := make([]graph.Edge, m)
	const chunk = 1 << 14
	nChunks := int((m + chunk - 1) / chunk)
	par.ForRange(nChunks, workers, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start := int64(ci) * chunk
			end := start + chunk
			if end > m {
				end = m
			}
			rng := rand.New(rand.NewSource(p.Seed ^ (int64(ci)+1)*0x5851F42D4C957F2D))
			for i := start; i < end; i++ {
				src, dst := p.oneEdge(rng)
				edges[i] = graph.Edge{Src: src, Dst: dst}
			}
		}
	})
	return edges
}

// oneEdge walks the recursive quadrant subdivision once.
func (p Params) oneEdge(rng *rand.Rand) (uint32, uint32) {
	var row, col uint32
	a, b, c := p.A, p.B, p.C
	for bit := p.Scale - 1; bit >= 0; bit-- {
		al, bl, cl := a, b, c
		if p.Noise > 0 {
			// Symmetric multiplicative noise per level.
			al *= 1 - p.Noise/2 + p.Noise*rng.Float64()
			bl *= 1 - p.Noise/2 + p.Noise*rng.Float64()
			cl *= 1 - p.Noise/2 + p.Noise*rng.Float64()
		}
		r := rng.Float64() * (al + bl + cl + (1 - a - b - c))
		switch {
		case r < al:
			// upper-left: nothing set
		case r < al+bl:
			col |= 1 << bit
		case r < al+bl+cl:
			row |= 1 << bit
		default:
			row |= 1 << bit
			col |= 1 << bit
		}
	}
	return row, col
}
