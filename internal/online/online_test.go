package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/repair"
	"faultyrank/internal/scanner"
)

func newCluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MkdirAll("/w")
	for i := 0; i < 10; i++ {
		if _, err := c.Create(fmt.Sprintf("/w/f%02d", i), 2*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func newTracker(t testing.TB, c *lustre.Cluster) *Tracker {
	t.Helper()
	tr, err := NewTracker(checker.ClusterImages(c), checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// partialsEqual compares tracker-maintained partials with fresh full
// scans, ignoring ordering differences within a server by comparing
// sorted content.
func assertSnapshotMatchesFullScan(t *testing.T, tr *Tracker, c *lustre.Cluster) {
	t.Helper()
	maintained := tr.Partials()
	for i, img := range checker.ClusterImages(c) {
		full, err := scanner.ScanImage(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		m := maintained[i]
		if m.ServerLabel != full.ServerLabel {
			t.Fatalf("label mismatch: %q vs %q", m.ServerLabel, full.ServerLabel)
		}
		if !reflect.DeepEqual(m.Objects, full.Objects) {
			t.Fatalf("%s: objects diverge:\n maintained %v\n full %v",
				m.ServerLabel, m.Objects, full.Objects)
		}
		if !reflect.DeepEqual(m.Edges, full.Edges) {
			t.Fatalf("%s: edges diverge (%d vs %d)",
				m.ServerLabel, len(m.Edges), len(full.Edges))
		}
		if m.Stats != full.Stats {
			t.Fatalf("%s: stats diverge: %+v vs %+v", m.ServerLabel, m.Stats, full.Stats)
		}
	}
}

func TestInitialSnapshotMatchesFullScan(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	assertSnapshotMatchesFullScan(t, tr, c)
}

// TestIncrementalEquivalenceProperty: after arbitrary mutation batches,
// Update() brings the maintained snapshot into exact agreement with a
// full offline rescan — the core online-mode invariant.
func TestIncrementalEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := newCluster(t)
		tr := newTracker(t, c)
		r := rand.New(rand.NewSource(seed))
		live := []string{}
		for i := 0; i < 10; i++ {
			live = append(live, fmt.Sprintf("/w/f%02d", i))
		}
		for batch := 0; batch < 6; batch++ {
			nOps := 1 + r.Intn(8)
			for op := 0; op < nOps; op++ {
				switch r.Intn(4) {
				case 0: // create
					p := fmt.Sprintf("/w/n%d-%d-%d", seed, batch, op)
					if _, err := c.Create(p, int64(r.Intn(4*64<<10))); err == nil {
						live = append(live, p)
					}
				case 1: // delete
					if len(live) > 1 {
						i := r.Intn(len(live))
						if err := c.Unlink(live[i]); err == nil {
							live = append(live[:i], live[i+1:]...)
						}
					}
				case 2: // new directory + file
					d := fmt.Sprintf("/d%d-%d-%d", seed, batch, op)
					if err := c.MkdirAll(d); err == nil {
						p := d + "/x"
						if _, err := c.Create(p, 100); err == nil {
							live = append(live, p)
						}
					}
				case 3: // hard link
					if len(live) > 0 {
						src := live[r.Intn(len(live))]
						dst := fmt.Sprintf("/w/l%d-%d-%d", seed, batch, op)
						if err := c.Link(src, dst); err == nil {
							// note: Unlink of a hardlinked file frees the
							// inode; keep links out of the delete pool.
							_ = dst
						}
					}
				}
			}
			if _, err := tr.Update(); err != nil {
				t.Fatal(err)
			}
			assertSnapshotMatchesFullScan(t, tr, c)
		}
	}
}

func TestUpdateCountsRefreshedInodes(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	n, err := tr.Update()
	if err != nil || n != 0 {
		t.Fatalf("idle update refreshed %d (%v)", n, err)
	}
	if _, err := c.Create("/w/new", 64<<10); err != nil {
		t.Fatal(err)
	}
	n, err = tr.Update()
	if err != nil {
		t.Fatal(err)
	}
	// new MDT inode + parent dir + one OST object
	if n < 3 {
		t.Errorf("refreshed %d inodes, want >= 3", n)
	}
	// Only the non-empty round is an update; the idle round before it
	// refreshed nothing and must not count.
	st := tr.Stats()
	if st.UpdateRounds != 1 || st.InodesRescanned != int64(n) {
		t.Errorf("stats: %d %d, want 1 %d", st.UpdateRounds, st.InodesRescanned, n)
	}
}

// TestUntrackedDeleteAndNoOpAccounting: a create-then-delete between
// updates leaves freed inodes in the feed that the tracker never saw
// alive — refreshing them is a no-op and must not count, while the
// surviving dirty inodes (the parent directory) still do.
func TestUntrackedDeleteAndNoOpAccounting(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if n, err := tr.Update(); err != nil || n != 0 {
		t.Fatalf("idle update: %d, %v", n, err)
	}
	if st := tr.Stats(); st.UpdateRounds != 0 {
		t.Fatalf("idle round counted as an update: %d", st.UpdateRounds)
	}
	if _, err := c.Create("/w/ephemeral", 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/w/ephemeral"); err != nil {
		t.Fatal(err)
	}
	// Expected refresh count: dirty inodes that are still allocated or
	// were tracked before the round (computed before Update consumes
	// the feeds).
	expected, freedUntracked := 0, 0
	for si, st := range tr.servers {
		for _, ino := range st.img.DirtyInodes() {
			tracked := tr.delta.Tracked(si, ino)
			if st.img.InodeAllocated(ino) || tracked {
				expected++
			} else {
				freedUntracked++
			}
		}
	}
	if freedUntracked == 0 {
		t.Fatal("test vector: no freed-untracked inode in the feed")
	}
	n, err := tr.Update()
	if err != nil {
		t.Fatal(err)
	}
	if n != expected {
		t.Fatalf("refreshed %d, want %d (untracked deletes must not count)", n, expected)
	}
	if st := tr.Stats(); st.UpdateRounds != 1 || st.InodesRescanned != int64(expected) {
		t.Fatalf("stats: %d %d, want 1 %d", st.UpdateRounds, st.InodesRescanned, expected)
	}
	assertSnapshotMatchesFullScan(t, tr, c)
}

// TestUpdateScanErrorAllOrNothing: a mid-feed scan error must leave the
// failing server's state and dirty feed untouched (so the next update
// retries the same work), while servers committed earlier in the round
// keep their refresh and the stats count exactly the committed work.
func TestUpdateScanErrorAllOrNothing(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := c.Create("/w/err-probe", 64<<10); err != nil {
		t.Fatal(err)
	}
	// Fail one allocated dirty inode on an OST, so the MDT (walked
	// first) commits before the failure.
	var failImg *ldiskfs.Image
	var failIno ldiskfs.Ino
	var ostDirty int
	for _, st := range tr.servers[1:] {
		for _, ino := range st.img.DirtyInodes() {
			if st.img.InodeAllocated(ino) {
				failImg, failIno = st.img, ino
				ostDirty = len(st.img.DirtyInodes())
				break
			}
		}
		if failImg != nil {
			break
		}
	}
	if failImg == nil {
		t.Fatal("test vector: no allocated dirty inode on any OST")
	}
	boom := errors.New("injected scan failure")
	tr.scan = func(img *ldiskfs.Image, ino ldiskfs.Ino) (*scanner.Partial, error) {
		if img == failImg && ino == failIno {
			return nil, boom
		}
		return scanner.ScanInode(img, ino)
	}
	n, err := tr.Update()
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The MDT committed (its feed is drained, its work counted)...
	if got := len(tr.servers[0].img.DirtyInodes()); got != 0 {
		t.Fatalf("MDT feed not drained by committed round: %d dirty", got)
	}
	if n == 0 {
		t.Fatal("MDT commit not reflected in the refresh count")
	}
	// ...while the failing OST's feed is fully intact.
	if got := len(failImg.DirtyInodes()); got != ostDirty {
		t.Fatalf("failing server's feed consumed: %d dirty, want %d", got, ostDirty)
	}
	if st := tr.Stats(); st.UpdateRounds != 1 || st.InodesRescanned != int64(n) {
		t.Fatalf("stats after failed round: %d %d, want 1 %d", st.UpdateRounds, st.InodesRescanned, n)
	}
	// Heal the seam: the retry consumes the same feed and converges to
	// the full-scan snapshot.
	tr.scan = scanner.ScanInode
	n2, err := tr.Update()
	if err != nil {
		t.Fatal(err)
	}
	if n2 == 0 {
		t.Fatal("retry refreshed nothing; feed was lost")
	}
	assertSnapshotMatchesFullScan(t, tr, c)
}

// TestOnlineCheckFindsLiveFault: metadata corruption applied through
// the EA API lands in the change feed and is caught by the next online
// check without any full rescan.
func TestOnlineCheckFindsLiveFault(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	res0, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.Findings) != 0 {
		t.Fatalf("clean cluster has findings: %v", res0.Findings)
	}
	inj, err := inject.Inject(c, inject.MismatchFilterFID, "/w/f04")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.InodesRefreshed == 0 {
		t.Fatal("change feed empty after injection")
	}
	if !res.HasFinding(checker.FaultyProperty, inj.VictimFID) {
		t.Fatalf("online check missed the fault: %+v", res.Findings)
	}
}

// TestSilentCorruptionNeedsRescan: byte-level corruption bypasses the
// change feed (Update sees nothing); Rescan picks it up.
func TestSilentCorruptionNeedsRescan(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	// Silent corruption: stomp a file's inline EA area directly.
	ent, err := c.Stat("/w/f07")
	if err != nil {
		t.Fatal(err)
	}
	off, err := c.MDT.Img.InodeOffset(ent.Ino)
	if err != nil {
		t.Fatal(err)
	}
	// EA area begins after the 128-byte header; flip bytes there.
	if err := c.MDT.Img.CorruptBytes(off+128, []byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("silent corruption visible without rescan: %v", res.Findings)
	}
	if err := tr.Rescan(); err != nil {
		t.Fatal(err)
	}
	res2, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Findings) == 0 {
		t.Fatal("rescan did not surface the corruption")
	}
}

// TestOnlineIsCheaperThanOffline: after a small change batch, the
// online update re-parses far fewer inodes than a full scan would.
func TestOnlineIsCheaperThanOffline(t *testing.T) {
	c := newCluster(t)
	for i := 0; i < 200; i++ {
		if _, err := c.Create(fmt.Sprintf("/w/bulk%03d", i), 64<<10); err != nil {
			t.Fatal(err)
		}
	}
	tr := newTracker(t, c)
	if _, err := c.Create("/w/one-more", 64<<10); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	total := c.TotalInodes()
	if int64(res.InodesRefreshed)*10 > total {
		t.Fatalf("online update refreshed %d of %d inodes — not incremental",
			res.InodesRefreshed, total)
	}
}

// TestRepairsFlowThroughChangeFeed: repairs applied by the repair
// engine mutate images through the metadata API, so the online tracker
// sees them: after inject -> online-detect -> repair, the next online
// check is clean without any rescans.
func TestRepairsFlowThroughChangeFeed(t *testing.T) {
	c := newCluster(t)
	images := checker.ClusterImages(c)
	tr, err := NewTracker(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inject.Inject(c, inject.UnrefLOVEADropped, "/w/f02"); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("fault not detected online")
	}
	eng := repair.NewEngine(images, res.Result)
	sum := eng.Apply(res.Findings)
	if sum.Applied == 0 {
		t.Fatalf("nothing applied: %v", sum.Log)
	}
	after, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if after.InodesRefreshed == 0 {
		t.Fatal("repairs did not reach the change feed")
	}
	if len(after.Findings) != 0 || after.Stats.UnpairedEdges != 0 {
		t.Fatalf("online view still inconsistent after repair: %d findings", len(after.Findings))
	}
	assertSnapshotMatchesFullScan(t, tr, c)
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(nil, checker.DefaultOptions()); err == nil {
		t.Fatal("empty tracker accepted")
	}
}

// coldAnalyze runs the full offline pipeline on fresh scans of the
// current images — the executable specification an online check must
// match finding-for-finding.
func coldAnalyze(t *testing.T, c *lustre.Cluster) *checker.Result {
	t.Helper()
	images := checker.ClusterImages(c)
	parts := make([]*scanner.Partial, len(images))
	for i, img := range images {
		p, err := scanner.ScanImage(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	res := &checker.Result{}
	if err := checker.Analyze(res, images, parts, checker.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return res
}

func fidLess(a, b lustre.FID) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Oid != b.Oid {
		return a.Oid < b.Oid
	}
	return a.Ver < b.Ver
}

func sortedFindings(fs []checker.Finding) []checker.Finding {
	out := append([]checker.Finding(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.FID != b.FID {
			return fidLess(a.FID, b.FID)
		}
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		return a.Detail < b.Detail
	})
	return out
}

// assertFindingsMatch compares an online result against a cold offline
// run in FID space: same findings (kind, FID, field, detail, repair
// plan) and the same graph size and stats. GID numbering is allowed to
// differ — everything downstream of the merge is FID-space.
//
// exactScores additionally requires scores equal to float round-off,
// which holds for cold-started online checks (identical trajectory up
// to summation order). Warm-started checks converge under the paper's
// loose ε=0.1 stopping rule, so their resting ranks may sit a few
// tenths from the cold trajectory's resting point while classifying
// identically — for those, finding identity is the invariant.
func assertFindingsMatch(t *testing.T, online, cold *checker.Result, exactScores bool) {
	t.Helper()
	if online.Unified.N() != cold.Unified.N() {
		t.Fatalf("vertex count: online %d, cold %d", online.Unified.N(), cold.Unified.N())
	}
	if !reflect.DeepEqual(online.Stats, cold.Stats) {
		t.Fatalf("graph stats diverge:\n online %+v\n cold   %+v", online.Stats, cold.Stats)
	}
	of, cf := sortedFindings(online.Findings), sortedFindings(cold.Findings)
	if len(of) != len(cf) {
		t.Fatalf("finding count: online %d, cold %d\n online %v\n cold   %v",
			len(of), len(cf), of, cf)
	}
	for i := range of {
		a, b := of[i], cf[i]
		if a.Kind != b.Kind || a.FID != b.FID || a.Field != b.Field || a.Detail != b.Detail {
			t.Fatalf("finding %d diverges:\n online %+v\n cold   %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.Repairs, b.Repairs) {
			t.Fatalf("finding %d repair plan diverges:\n online %v\n cold   %v", i, a.Repairs, b.Repairs)
		}
		if exactScores && math.Abs(a.Score-b.Score) > 1e-9 {
			t.Fatalf("finding %d score: online %g, cold %g", i, a.Score, b.Score)
		}
	}
}

// TestOnlineCheckMatchesColdAnalyze is the acceptance property: after
// arbitrary mutation batches — deletes, re-creates of just-freed paths
// (inode-number reuse), live fault injection — the incremental snapshot
// plus warm-started ranking produce exactly the findings of a cold
// checker.Analyze over fresh full scans.
func TestOnlineCheckMatchesColdAnalyze(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := newCluster(t)
		tr := newTracker(t, c)
		r := rand.New(rand.NewSource(seed + 100))
		live := []string{}
		for i := 0; i < 10; i++ {
			live = append(live, fmt.Sprintf("/w/f%02d", i))
		}
		for round := 0; round < 4; round++ {
			for op := 0; op < 1+r.Intn(6); op++ {
				switch r.Intn(4) {
				case 0:
					p := fmt.Sprintf("/w/m%d-%d-%d", seed, round, op)
					if _, err := c.Create(p, int64(r.Intn(3*64<<10))); err == nil {
						live = append(live, p)
					}
				case 1:
					if len(live) > 1 {
						i := r.Intn(len(live))
						if err := c.Unlink(live[i]); err == nil {
							live = append(live[:i], live[i+1:]...)
						}
					}
				case 2:
					// Delete then immediately recreate the same path:
					// the freed inode numbers are typically reused, the
					// delete-then-recreate case the delta merge must
					// tombstone correctly.
					if len(live) > 1 {
						i := r.Intn(len(live))
						p := live[i]
						if err := c.Unlink(p); err == nil {
							if _, err := c.Create(p, 64<<10); err != nil {
								live = append(live[:i], live[i+1:]...)
							}
						}
					}
				case 3:
					if len(live) > 0 && r.Intn(2) == 0 {
						// Live fault, visible through the change feed.
						_, _ = inject.Inject(c, inject.MismatchFilterFID, live[r.Intn(len(live))])
					}
				}
			}
			res, err := tr.Check()
			if err != nil {
				t.Fatal(err)
			}
			if res.Round != int64(round+1) {
				t.Fatalf("round %d: got Round %d", round, res.Round)
			}
			if res.Warm != (round > 0) {
				t.Fatalf("round %d: Warm = %v", round, res.Warm)
			}
			assertFindingsMatch(t, res.Result, coldAnalyze(t, c), !res.Warm)
		}
	}
}

// TestRescanMatchesColdAfterSilentCorruption: byte-stomped metadata is
// invisible to the feed; after Rescan the online result must again
// match a cold run exactly (and start cold — trust in old ranks is
// revoked with the snapshot).
func TestRescanMatchesColdAfterSilentCorruption(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	ent, err := c.Stat("/w/f03")
	if err != nil {
		t.Fatal(err)
	}
	off, err := c.MDT.Img.InodeOffset(ent.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MDT.Img.CorruptBytes(off+128, []byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rescan(); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm {
		t.Fatal("check after Rescan claimed a warm start")
	}
	if len(res.Findings) == 0 {
		t.Fatal("rescan did not surface the corruption")
	}
	assertFindingsMatch(t, res.Result, coldAnalyze(t, c), true)
}

// TestWarmStartCutsIterations: a re-check of an unchanged snapshot is
// seeded with the previous fixed point and must converge in no more
// iterations than the cold first check.
func TestWarmStartCutsIterations(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	first, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	second, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if first.Warm || !second.Warm {
		t.Fatalf("warm flags: first %v, second %v", first.Warm, second.Warm)
	}
	if second.Rank.Iterations > first.Rank.Iterations {
		t.Fatalf("warm re-check took %d iterations, cold took %d",
			second.Rank.Iterations, first.Rank.Iterations)
	}
	if second.InodesRefreshed != 0 {
		t.Fatalf("unchanged snapshot refreshed %d inodes", second.InodesRefreshed)
	}
}

// TestClusterSectionCarriesRefreshCounts: online results expose the
// per-server telemetry sections, with the refresh work attributed to
// the servers that did it.
func TestClusterSectionCarriesRefreshCounts(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := c.Create("/w/counted", 64<<10); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == nil {
		t.Fatal("online result has no phase tree")
	}
	if len(res.Metrics.Counters) == 0 {
		t.Fatal("online result has no metrics snapshot")
	}
	if res.Cluster == nil {
		t.Fatal("online result has no cluster manifest")
	}
	if len(res.PerServer) == 0 {
		t.Fatal("round refreshed nothing")
	}
	var total int64
	for _, rr := range res.PerServer {
		sec := res.Cluster.Server(rr.Server)
		if sec == nil {
			t.Fatalf("no cluster section for %s", rr.Server)
		}
		if sec.InodesScanned < int64(rr.Refreshed) {
			t.Fatalf("%s: section counts %d scanned, round refreshed %d",
				rr.Server, sec.InodesScanned, rr.Refreshed)
		}
		total += sec.InodesScanned
	}
	if total < int64(res.InodesRefreshed) {
		t.Fatalf("sections count %d, round refreshed %d", total, res.InodesRefreshed)
	}
}

// TestWatchLoopWithLiveMutator drives Watch concurrently with a mutator
// that shares the quiesce lock — the arrangement the -race CI run
// checks for unsynchronised image access.
func TestWatchLoopWithLiveMutator(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			p := fmt.Sprintf("/w/live%04d", i)
			_, _ = c.Create(p, 64<<10)
			if i%3 == 2 {
				_ = c.Unlink(fmt.Sprintf("/w/live%04d", i-1))
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()
	var rounds []int
	err := tr.Watch(context.Background(), WatchOptions{
		Interval: 5 * time.Millisecond,
		Rounds:   5,
		Quiesce:  &mu,
		OnRound: func(round int, res *CheckResult) {
			rounds = append(rounds, round)
		},
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("rounds observed: %v", rounds)
	}
	assertSnapshotMatchesFullScan(t, tr, c)
}

// TestUpdateLostDirtyRegression: an inode dirtied by a concurrent
// mutator *during* an update round — after the round snapshotted the
// dirty feeds but before it committed — must survive into the next
// round's feed. The tracker used to ClearDirty on commit, wiping the
// whole map and silently losing exactly those mid-round changes; commit
// now acknowledges only the snapshot it consumed (Image.ConsumeDirty).
// The mutator runs on its own goroutine with a channel handshake, so
// the -race run also proves the interleaving is synchronised.
func TestUpdateLostDirtyRegression(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := c.Create("/w/seen", 64<<10); err != nil {
		t.Fatal(err)
	}

	scanStarted := make(chan struct{})
	mutated := make(chan struct{})
	var once sync.Once
	tr.scan = func(img *ldiskfs.Image, ino ldiskfs.Ino) (*scanner.Partial, error) {
		// Park the round mid-flight — between its DirtyInodes snapshot
		// and its commit — while the mutator runs.
		once.Do(func() {
			close(scanStarted)
			<-mutated
		})
		return scanner.ScanInode(img, ino)
	}
	go func() {
		defer close(mutated)
		<-scanStarted
		if _, err := c.Create("/w/late", 64<<10); err != nil {
			t.Error(err)
		}
	}()
	if _, err := tr.Update(); err != nil {
		t.Fatal(err)
	}
	tr.scan = scanner.ScanInode

	dirty := 0
	for _, st := range tr.servers {
		dirty += len(st.img.DirtyInodes())
	}
	if dirty == 0 {
		t.Fatal("mid-round mutation vanished from the change feeds (lost update)")
	}
	if n, err := tr.Update(); err != nil || n == 0 {
		t.Fatalf("follow-up round refreshed %d (%v)", n, err)
	}
	assertSnapshotMatchesFullScan(t, tr, c)
}

// TestUnconvergedCheckDoesNotSaveWarmState: a check whose ranking hits
// the iteration cap without converging must not become the next check's
// warm seed — persisting the truncated trajectory used to poison every
// later warm start.
func TestUnconvergedCheckDoesNotSaveWarmState(t *testing.T) {
	c := newCluster(t)
	opt := checker.DefaultOptions()
	opt.Core.MaxIterations = 1
	tr, err := NewTracker(checker.ClusterImages(c), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank.Converged {
		t.Fatal("test vector: one iteration converged; the cap is not binding")
	}
	if tr.haveWarm {
		t.Fatal("unconverged check saved warm-start state")
	}
	if tr.lastIters != 0 {
		t.Fatalf("unconverged check set lastIters = %d", tr.lastIters)
	}

	// Lift the cap: the next check still starts cold (there is no warm
	// state to use), converges, and only then persists its fixed point.
	tr.opt.Core = core.DefaultOptions()
	res2, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Warm {
		t.Fatal("check after an unconverged round claimed a warm start")
	}
	if !res2.Rank.Converged || !tr.haveWarm || tr.lastIters != res2.Rank.Iterations {
		t.Fatalf("converged check did not persist warm state: converged=%v haveWarm=%v lastIters=%d",
			res2.Rank.Converged, tr.haveWarm, tr.lastIters)
	}
}

// TestWatchFirstRoundImmediate: round 1 runs as soon as Watch is
// entered; the watcher must not sit out a full interval (here: an hour)
// before its first look at the images.
func TestWatchFirstRoundImmediate(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := c.Create("/w/pre-existing-change", 64<<10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var first *CheckResult
	err := tr.Watch(ctx, WatchOptions{
		Interval: time.Hour,
		Rounds:   1,
		OnRound:  func(round int, res *CheckResult) { first = res },
	})
	if err != nil {
		t.Fatalf("first watch round did not run immediately: %v", err)
	}
	if first == nil || first.InodesRefreshed == 0 {
		t.Fatalf("immediate round missed the pending change: %+v", first)
	}
}

func TestWatchContextCancel(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tr.Watch(ctx, WatchOptions{Interval: time.Hour}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// trackingLock records Lock/Unlock pairing — the quiesce contract: the
// watch takes the lock exactly once per round and never leaks a hold.
type trackingLock struct {
	mu     sync.Mutex
	locks  int
	held   bool
	leaked bool
}

func (l *trackingLock) Lock() {
	l.mu.Lock()
	if l.held {
		l.leaked = true
	}
	l.held = true
	l.locks++
}

func (l *trackingLock) Unlock() {
	if !l.held {
		l.leaked = true
	}
	l.held = false
	l.mu.Unlock()
}

// TestWatchQuiesceOncePerRound: each round holds the quiesce lock for
// exactly one balanced Lock/Unlock, and the lock is free again while
// OnRound observers run.
func TestWatchQuiesceOncePerRound(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	lock := &trackingLock{}
	err := tr.Watch(context.Background(), WatchOptions{
		Interval: time.Millisecond,
		Rounds:   3,
		Quiesce:  lock,
		OnRound: func(round int, res *CheckResult) {
			if lock.held {
				t.Errorf("round %d: quiesce still held in OnRound", round)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lock.locks != 3 || lock.held || lock.leaked {
		t.Fatalf("quiesce lock: %d holds, held=%v leaked=%v", lock.locks, lock.held, lock.leaked)
	}
}

// TestWatchGateBracketsEveryRound: the pool gate is acquired before and
// released after each round — including failed rounds — and never held
// across the inter-round sleep.
func TestWatchGateBracketsEveryRound(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	tr.InjectScanFault(&inject.ScanFault{FailEvery: 1, MaxFailures: 1})
	if _, err := c.Create("/w/gated", 64<<10); err != nil {
		t.Fatal(err)
	}
	var acquires, releases int
	var failed []int
	err := tr.Watch(context.Background(), WatchOptions{
		Interval: time.Millisecond,
		Rounds:   3,
		Gate: func(ctx context.Context) (func(), error) {
			acquires++
			return func() { releases++ }, nil
		},
		OnError: func(round int, err error) error {
			failed = append(failed, round)
			if !errors.Is(err, inject.ErrScanInjected) {
				t.Errorf("round %d: unexpected error %v", round, err)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if acquires != 3 || releases != 3 {
		t.Fatalf("gate acquired %d, released %d (want 3/3)", acquires, releases)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed rounds %v (want [1])", failed)
	}
}

// TestWatchOnErrorRecovery: a failed round leaves the feed intact,
// OnError elects to continue, and the very next round commits the
// retried work.
func TestWatchOnErrorRecovery(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	tr.InjectScanFault(&inject.ScanFault{FailEvery: 1, MaxFailures: 1})
	if _, err := c.Create("/w/retry-me", 2*64<<10); err != nil {
		t.Fatal(err)
	}
	var rounds []int
	var recovered *CheckResult
	err := tr.Watch(context.Background(), WatchOptions{
		Interval: time.Millisecond,
		Rounds:   2,
		OnError:  func(round int, err error) error { return nil },
		OnRound: func(round int, res *CheckResult) {
			rounds = append(rounds, round)
			recovered = res
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 || rounds[0] != 2 {
		t.Fatalf("completed rounds %v (want [2]: round 1 failed)", rounds)
	}
	if recovered.InodesRefreshed == 0 {
		t.Fatal("retried round committed nothing — the failed round lost the feed")
	}
	if st := tr.Stats(); st.Checks != 1 || st.InodesRescanned == 0 {
		t.Fatalf("stats after recovery: %+v", st)
	}
	assertSnapshotMatchesFullScan(t, tr, c)
}

// TestWatchOnErrorStops: a non-nil return from OnError ends the watch
// with exactly that error.
func TestWatchOnErrorStops(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	tr.InjectScanFault(&inject.ScanFault{FailEvery: 1, MaxFailures: 1})
	if _, err := c.Create("/w/fatal", 64<<10); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("escalated")
	err := tr.Watch(context.Background(), WatchOptions{
		Interval: time.Millisecond,
		OnError:  func(round int, err error) error { return sentinel },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want the sentinel, got %v", err)
	}
}

// TestWatchNilOnErrorFailsFast: without an OnError hook the first
// failed round ends the watch with the round's error — the original
// contract a daemon opts out of.
func TestWatchNilOnErrorFailsFast(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	tr.InjectScanFault(&inject.ScanFault{FailEvery: 1, MaxFailures: 1})
	if _, err := c.Create("/w/fatal", 64<<10); err != nil {
		t.Fatal(err)
	}
	err := tr.Watch(context.Background(), WatchOptions{Interval: time.Millisecond, Rounds: 3})
	if !errors.Is(err, inject.ErrScanInjected) {
		t.Fatalf("want the round error, got %v", err)
	}
}

// TestWatchCancelDuringGateWait: a shutdown that lands while a round
// waits for a pool slot reports the cancellation, not a round error —
// and OnError is never invoked for it.
func TestWatchCancelDuringGateWait(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	err := tr.Watch(ctx, WatchOptions{
		Interval: time.Millisecond,
		Gate: func(ctx context.Context) (func(), error) {
			cancel() // shutdown arrives while queued for the pool
			<-ctx.Done()
			return nil, ctx.Err()
		},
		OnError: func(round int, err error) error {
			t.Errorf("OnError invoked for shutdown: %v", err)
			return err
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestWatchCancelMidRun: cancellation delivered between rounds (from an
// OnRound observer — mid-watch, not pre-loop) stops an unbounded watch
// with ctx's error.
func TestWatchCancelMidRun(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rounds int
	err := tr.Watch(ctx, WatchOptions{
		Interval: time.Millisecond,
		OnRound: func(round int, res *CheckResult) {
			rounds = round
			if round == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rounds != 2 {
		t.Fatalf("watch ran %d rounds after mid-run cancel", rounds)
	}
}
