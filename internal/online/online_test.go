package online

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/repair"
	"faultyrank/internal/scanner"
)

func newCluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MkdirAll("/w")
	for i := 0; i < 10; i++ {
		if _, err := c.Create(fmt.Sprintf("/w/f%02d", i), 2*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func newTracker(t testing.TB, c *lustre.Cluster) *Tracker {
	t.Helper()
	tr, err := NewTracker(checker.ClusterImages(c), checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// partialsEqual compares tracker-maintained partials with fresh full
// scans, ignoring ordering differences within a server by comparing
// sorted content.
func assertSnapshotMatchesFullScan(t *testing.T, tr *Tracker, c *lustre.Cluster) {
	t.Helper()
	maintained := tr.Partials()
	for i, img := range checker.ClusterImages(c) {
		full, err := scanner.ScanImage(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		m := maintained[i]
		if m.ServerLabel != full.ServerLabel {
			t.Fatalf("label mismatch: %q vs %q", m.ServerLabel, full.ServerLabel)
		}
		if !reflect.DeepEqual(m.Objects, full.Objects) {
			t.Fatalf("%s: objects diverge:\n maintained %v\n full %v",
				m.ServerLabel, m.Objects, full.Objects)
		}
		if !reflect.DeepEqual(m.Edges, full.Edges) {
			t.Fatalf("%s: edges diverge (%d vs %d)",
				m.ServerLabel, len(m.Edges), len(full.Edges))
		}
		if m.Stats != full.Stats {
			t.Fatalf("%s: stats diverge: %+v vs %+v", m.ServerLabel, m.Stats, full.Stats)
		}
	}
}

func TestInitialSnapshotMatchesFullScan(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	assertSnapshotMatchesFullScan(t, tr, c)
}

// TestIncrementalEquivalenceProperty: after arbitrary mutation batches,
// Update() brings the maintained snapshot into exact agreement with a
// full offline rescan — the core online-mode invariant.
func TestIncrementalEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := newCluster(t)
		tr := newTracker(t, c)
		r := rand.New(rand.NewSource(seed))
		live := []string{}
		for i := 0; i < 10; i++ {
			live = append(live, fmt.Sprintf("/w/f%02d", i))
		}
		for batch := 0; batch < 6; batch++ {
			nOps := 1 + r.Intn(8)
			for op := 0; op < nOps; op++ {
				switch r.Intn(4) {
				case 0: // create
					p := fmt.Sprintf("/w/n%d-%d-%d", seed, batch, op)
					if _, err := c.Create(p, int64(r.Intn(4*64<<10))); err == nil {
						live = append(live, p)
					}
				case 1: // delete
					if len(live) > 1 {
						i := r.Intn(len(live))
						if err := c.Unlink(live[i]); err == nil {
							live = append(live[:i], live[i+1:]...)
						}
					}
				case 2: // new directory + file
					d := fmt.Sprintf("/d%d-%d-%d", seed, batch, op)
					if err := c.MkdirAll(d); err == nil {
						p := d + "/x"
						if _, err := c.Create(p, 100); err == nil {
							live = append(live, p)
						}
					}
				case 3: // hard link
					if len(live) > 0 {
						src := live[r.Intn(len(live))]
						dst := fmt.Sprintf("/w/l%d-%d-%d", seed, batch, op)
						if err := c.Link(src, dst); err == nil {
							// note: Unlink of a hardlinked file frees the
							// inode; keep links out of the delete pool.
							_ = dst
						}
					}
				}
			}
			if _, err := tr.Update(); err != nil {
				t.Fatal(err)
			}
			assertSnapshotMatchesFullScan(t, tr, c)
		}
	}
}

func TestUpdateCountsRefreshedInodes(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	n, err := tr.Update()
	if err != nil || n != 0 {
		t.Fatalf("idle update refreshed %d (%v)", n, err)
	}
	if _, err := c.Create("/w/new", 64<<10); err != nil {
		t.Fatal(err)
	}
	n, err = tr.Update()
	if err != nil {
		t.Fatal(err)
	}
	// new MDT inode + parent dir + one OST object
	if n < 3 {
		t.Errorf("refreshed %d inodes, want >= 3", n)
	}
	updates, rescanned := tr.Stats()
	if updates != 2 || rescanned != int64(n) {
		t.Errorf("stats: %d %d", updates, rescanned)
	}
}

// TestOnlineCheckFindsLiveFault: metadata corruption applied through
// the EA API lands in the change feed and is caught by the next online
// check without any full rescan.
func TestOnlineCheckFindsLiveFault(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	res0, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.Findings) != 0 {
		t.Fatalf("clean cluster has findings: %v", res0.Findings)
	}
	inj, err := inject.Inject(c, inject.MismatchFilterFID, "/w/f04")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.InodesRefreshed == 0 {
		t.Fatal("change feed empty after injection")
	}
	if !res.HasFinding(checker.FaultyProperty, inj.VictimFID) {
		t.Fatalf("online check missed the fault: %+v", res.Findings)
	}
}

// TestSilentCorruptionNeedsRescan: byte-level corruption bypasses the
// change feed (Update sees nothing); Rescan picks it up.
func TestSilentCorruptionNeedsRescan(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	// Silent corruption: stomp a file's inline EA area directly.
	ent, err := c.Stat("/w/f07")
	if err != nil {
		t.Fatal(err)
	}
	off, err := c.MDT.Img.InodeOffset(ent.Ino)
	if err != nil {
		t.Fatal(err)
	}
	// EA area begins after the 128-byte header; flip bytes there.
	if err := c.MDT.Img.CorruptBytes(off+128, []byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("silent corruption visible without rescan: %v", res.Findings)
	}
	if err := tr.Rescan(); err != nil {
		t.Fatal(err)
	}
	res2, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Findings) == 0 {
		t.Fatal("rescan did not surface the corruption")
	}
}

// TestOnlineIsCheaperThanOffline: after a small change batch, the
// online update re-parses far fewer inodes than a full scan would.
func TestOnlineIsCheaperThanOffline(t *testing.T) {
	c := newCluster(t)
	for i := 0; i < 200; i++ {
		if _, err := c.Create(fmt.Sprintf("/w/bulk%03d", i), 64<<10); err != nil {
			t.Fatal(err)
		}
	}
	tr := newTracker(t, c)
	if _, err := c.Create("/w/one-more", 64<<10); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	total := c.TotalInodes()
	if int64(res.InodesRefreshed)*10 > total {
		t.Fatalf("online update refreshed %d of %d inodes — not incremental",
			res.InodesRefreshed, total)
	}
}

// TestRepairsFlowThroughChangeFeed: repairs applied by the repair
// engine mutate images through the metadata API, so the online tracker
// sees them: after inject -> online-detect -> repair, the next online
// check is clean without any rescans.
func TestRepairsFlowThroughChangeFeed(t *testing.T) {
	c := newCluster(t)
	images := checker.ClusterImages(c)
	tr, err := NewTracker(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inject.Inject(c, inject.UnrefLOVEADropped, "/w/f02"); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("fault not detected online")
	}
	eng := repair.NewEngine(images, res.Result)
	sum := eng.Apply(res.Findings)
	if sum.Applied == 0 {
		t.Fatalf("nothing applied: %v", sum.Log)
	}
	after, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if after.InodesRefreshed == 0 {
		t.Fatal("repairs did not reach the change feed")
	}
	if len(after.Findings) != 0 || after.Stats.UnpairedEdges != 0 {
		t.Fatalf("online view still inconsistent after repair: %d findings", len(after.Findings))
	}
	assertSnapshotMatchesFullScan(t, tr, c)
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(nil, checker.DefaultOptions()); err == nil {
		t.Fatal("empty tracker accepted")
	}
}
