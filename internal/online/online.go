// Package online implements the paper's first future-work item (§VIII):
// an *online* FaultyRank that does not require unmounting the file
// system. Instead of rescanning every server from scratch, a Tracker
// maintains each server's partial graph incrementally by consuming the
// image's dirty-inode feed (the simulation counterpart of Lustre's
// ChangeLog): only the inodes whose metadata changed since the last
// update are re-parsed, and checks run on the maintained snapshot.
//
// The pipeline is incremental end to end. Re-parsed inodes feed an
// agg.DeltaBuilder that keeps the FID interner and the unified graph's
// per-inode contributions cached across checks, so a check after a
// small delta re-interns only the delta instead of re-merging every
// server's full partial. Ranking warm-starts from the previous check's
// converged ranks (core.Options.InitialID/InitialProp), carried across
// checks on the builder's stable internal ids, so the kernel converges
// in a handful of iterations instead of re-deriving everything from the
// uniform start.
//
// The equivalence invariant — an incrementally maintained snapshot
// yields exactly the findings of a full offline rescan — is what makes
// the online mode trustworthy, and is enforced by property tests
// (FID-space graph equivalence plus finding-for-finding agreement with
// a cold checker.Analyze).
//
// Silent corruption (byte flips that bypass the metadata API) does not
// appear in the change feed, exactly as it would not appear in a real
// changelog; Tracker.Rescan forces a full resweep for that case, and
// deployments would pair the online checker with periodic full scrubs.
package online

import (
	"context"
	"fmt"
	"sync"
	"time"

	"faultyrank/internal/agg"
	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
	"faultyrank/internal/wire"
)

// Tracker maintains incrementally-updated partial graphs for a set of
// server images (MDT first, then OSTs — the canonical order).
type Tracker struct {
	images  []*ldiskfs.Image
	servers []*serverState
	opt     checker.Options

	// delta is the incremental aggregator: per-inode contributions and
	// the FID interner survive across checks.
	delta *agg.DeltaBuilder

	// Warm-start state, indexed by the delta builder's stable internal
	// ids so ranks survive arbitrary GID renumbering between checks.
	prevID, prevProp []float64
	haveWarm         bool

	// scan re-parses one inode; a test seam for injecting scan errors.
	scan func(*ldiskfs.Image, ldiskfs.Ino) (*scanner.Partial, error)

	// lastIters is the most recent converged check's iteration count —
	// the yardstick for the next warm attempt's budget.
	lastIters int

	// Lifetime stats. updates counts only rounds that refreshed at
	// least one inode — idle watch rounds are not "updates" — and
	// inodesRescan counts exactly the inodes whose refresh was
	// committed, even when a later server's feed fails mid-round;
	// inodesDropped is the committed subset that were deallocations.
	updates       int64
	inodesRescan  int64
	inodesDropped int64
	checks        int64
	warmFallbacks int64
	rescans       int64
}

// warmIterCap bounds a warm ranking attempt: twice the last converged
// count (floor 16), never above the configured cap. A warm seed that
// has not converged within that budget is resuming a creep the cold
// criterion would truncate — not saving work.
func warmIterCap(lastIters, maxIters int) int {
	c := 2 * lastIters
	if c < 16 {
		c = 16
	}
	if maxIters > 0 && c > maxIters {
		c = maxIters
	}
	return c
}

// serverState is one server's image handle plus its telemetry. The scan
// results themselves live in the delta builder's contribution cache —
// the single copy of the maintained snapshot (it used to be duplicated
// here as a per-inode partial map).
type serverState struct {
	img *ldiskfs.Image

	// Per-server instruments: the online analogue of the per-server
	// registries the offline TCP path ships home as wire trailers.
	reg       *telemetry.Registry
	refreshed *telemetry.Counter // scanner_inodes_scanned_total
	dropped   *telemetry.Counter // online_inodes_dropped_total
	rounds    *telemetry.Counter // online_update_rounds_total
	lastSpan  *telemetry.SpanNode
}

func newServerState(img *ldiskfs.Image) *serverState {
	reg := telemetry.NewRegistry()
	return &serverState{
		img:       img,
		reg:       reg,
		refreshed: reg.Counter("scanner_inodes_scanned_total"),
		dropped:   reg.Counter("online_inodes_dropped_total"),
		rounds:    reg.Counter("online_update_rounds_total"),
	}
}

// NewTracker performs the initial full scan (clearing the change feeds)
// and returns a tracker ready for incremental updates.
func NewTracker(images []*ldiskfs.Image, opt checker.Options) (*Tracker, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("online: no images")
	}
	if opt.Core.MaxIterations == 0 {
		opt.Core = core.DefaultOptions()
	}
	t := &Tracker{images: images, opt: opt, scan: scanner.ScanInode}
	for _, img := range images {
		t.servers = append(t.servers, newServerState(img))
	}
	if err := t.fullScan(); err != nil {
		return nil, err
	}
	return t, nil
}

// fullScan (re)builds every server's inode store and the incremental
// aggregator from scratch, then clears the change feeds.
func (t *Tracker) fullScan() error {
	labels := make([]string, len(t.images))
	for i, img := range t.images {
		labels[i] = img.Label()
	}
	t.delta = agg.NewDeltaBuilder(labels)
	for si, st := range t.servers {
		err := st.img.AllocatedInodes(func(ino ldiskfs.Ino, _ ldiskfs.FileType) error {
			p, err := t.scan(st.img, ino)
			if err != nil {
				return err
			}
			return t.delta.Apply(si, ino, p)
		})
		if err != nil {
			return err
		}
		// A full scan covers every allocated inode, so it may wipe the
		// whole feed — unlike Update, which must only acknowledge the
		// inodes it actually consumed. (Full scans run quiesced: initial
		// construction and the explicit Rescan escape hatch.)
		st.img.ClearDirty()
	}
	// The graph may change arbitrarily across a full rescan; stale
	// warm-start ranks (and the old interner's id space) are dropped.
	t.prevID, t.prevProp, t.haveWarm = nil, nil, false
	return nil
}

// RoundRefresh is one server's share of an update round.
type RoundRefresh struct {
	Server string
	// Refreshed counts inodes actually re-parsed or dropped from the
	// tracked set this round.
	Refreshed int
	// Dropped is the subset of Refreshed that were deallocations.
	Dropped int
}

// staged is one dirty inode's pending outcome: a fresh scan result, or
// a tombstone for a deallocated inode.
type staged struct {
	ino     ldiskfs.Ino
	p       *scanner.Partial // nil = deallocated
	tracked bool             // was in byIno before this round
}

// Update consumes every server's dirty-inode feed, re-parsing exactly
// the changed inodes. It returns how many inodes were refreshed.
//
// Consumption is all-or-nothing per server: every dirty inode is
// re-parsed into a staging batch first, and only a fully scanned batch
// is committed (and the server's feed cleared). A mid-feed scan error
// leaves that server's state and feed untouched — the next Update sees
// the same dirty set — while servers committed earlier in the round
// keep their refresh, and the lifetime stats count exactly what was
// committed. A deallocated inode that was never tracked contributes
// nothing and is not counted.
func (t *Tracker) Update() (int, error) {
	refreshed, _, err := t.update()
	return refreshed, err
}

func (t *Tracker) update() (int, []RoundRefresh, error) {
	refreshed, droppedTotal := 0, 0
	var perServer []RoundRefresh
	commit := func() {
		if refreshed > 0 {
			t.updates++
			t.inodesRescan += int64(refreshed)
			t.inodesDropped += int64(droppedTotal)
		}
	}
	for si, st := range t.servers {
		dirty := st.img.DirtyInodes()
		if len(dirty) == 0 {
			continue
		}
		_, sp := telemetry.StartSpan(context.Background(), "update:"+st.img.Label())
		// Stage: parse the whole feed before touching any state.
		batch := make([]staged, 0, len(dirty))
		for _, ino := range dirty {
			tracked := t.delta.Tracked(si, ino)
			if !st.img.InodeAllocated(ino) {
				batch = append(batch, staged{ino: ino, tracked: tracked})
				continue
			}
			p, err := t.scan(st.img, ino)
			if err != nil {
				sp.End()
				commit()
				t.opt.Journal.Record("online", "feed-error",
					"server", st.img.Label(),
					"ino", fmt.Sprintf("%d", ino),
					"err", err.Error())
				return refreshed, perServer, fmt.Errorf(
					"online: %s ino %d: %w (feed left intact)", st.img.Label(), ino, err)
			}
			batch = append(batch, staged{ino: ino, p: p, tracked: tracked})
		}
		// Commit: apply the batch, clear the feed, count what was done.
		count, dropped := 0, 0
		for _, s := range batch {
			if s.p == nil {
				if !s.tracked {
					// Freed before we ever saw it (created and deleted
					// between updates): nothing to refresh, nothing to
					// count.
					continue
				}
				t.delta.Remove(si, s.ino)
				count++
				dropped++
				continue
			}
			if err := t.delta.Apply(si, s.ino, s.p); err != nil {
				sp.End()
				commit()
				return refreshed, perServer, err
			}
			count++
		}
		// Acknowledge exactly the snapshot this round consumed. An inode
		// dirtied by a mutator between the DirtyInodes() call above and
		// this commit stays in the feed for the next round — ClearDirty
		// here would silently drop it (the classic lost update).
		st.img.ConsumeDirty(dirty)
		sp.End()
		if count > 0 {
			node := sp.Node()
			st.lastSpan = &node
			st.refreshed.Add(int64(count))
			st.dropped.Add(int64(dropped))
			st.rounds.Inc()
			perServer = append(perServer, RoundRefresh{
				Server: st.img.Label(), Refreshed: count, Dropped: dropped,
			})
			t.opt.Journal.Record("online", "feed-commit",
				"server", st.img.Label(),
				"refreshed", fmt.Sprintf("%d", count),
				"dropped", fmt.Sprintf("%d", dropped))
			refreshed += count
			droppedTotal += dropped
		}
	}
	commit()
	return refreshed, perServer, nil
}

// Rescan discards the incremental state of every server and re-sweeps
// from the images (the periodic full-scrub escape hatch for silent
// corruption the change feed cannot see). Warm-start ranks are dropped
// with it — the next check starts cold, as trust in the old snapshot is
// exactly what a rescan revokes.
func (t *Tracker) Rescan() error {
	if err := t.fullScan(); err != nil {
		return err
	}
	t.rescans++
	t.opt.Journal.Record("online", "rescan")
	return nil
}

// Partials materialises the maintained per-server partial graphs in
// deterministic (inode) order — content-identical to a full offline
// scan of the current images.
func (t *Tracker) Partials() []*scanner.Partial {
	out := make([]*scanner.Partial, 0, len(t.servers))
	for si := range t.servers {
		out = append(out, t.delta.ServerPartial(si))
	}
	return out
}

// CheckResult extends the checker result with the incremental timings.
type CheckResult struct {
	*checker.Result
	// TUpdate is the time spent consuming the change feed (replaces the
	// offline T_scan).
	TUpdate time.Duration
	// InodesRefreshed is how many inodes this check re-parsed.
	InodesRefreshed int
	// PerServer breaks the refresh down by server for this round.
	PerServer []RoundRefresh
	// Round is this check's sequence number (1 = the first check).
	Round int64
	// Warm reports whether ranking was seeded from the previous check.
	Warm bool
}

// Check consumes pending changes and runs the analysis stages on the
// maintained snapshot — the online equivalent of checker.Run, without
// any unmount or full rescan. The unified graph comes from the
// incremental aggregator and ranking warm-starts from the previous
// check, so the cost after a small delta is the delta's re-parse plus
// the CSR build and a handful of iterations.
func (t *Tracker) Check() (*CheckResult, error) {
	t0 := time.Now()
	refreshed, perServer, err := t.update()
	if err != nil {
		return nil, err
	}
	update := time.Since(t0)

	mat := t.delta.Materialize()
	opt := t.opt
	warm := t.haveWarm
	res := &checker.Result{}
	if warm {
		// The warm attempt gets a bounded iteration budget. On most
		// deltas the previous fixed point is a few steps from the new
		// one and the attempt converges almost immediately; but on
		// hub-heavy graphs a warm seed can resume the slow hub-
		// equilibration creep that a cold run's loose stopping rule
		// truncates early, crawling for the full iteration cap. If the
		// budget runs out unconverged, abandon the seed and redo the
		// round cold — warm checks then never cost more than a small
		// multiple of a cold one, and always converge when cold would.
		wopt := opt
		wopt.Core.InitialID = t.warmVector(t.prevID, mat)
		wopt.Core.InitialProp = t.warmVector(t.prevProp, mat)
		wopt.Core.MaxIterations = warmIterCap(t.lastIters, opt.Core.MaxIterations)
		// The frontier seeds are the vertices whose cached contribution
		// changed since the ranks we are warm-starting from, so the warm
		// attempt runs the O(delta) incremental kernel instead of full
		// sweeps over the whole graph.
		wopt.RankIncremental = true
		wopt.RankFrontier = mat.DirtySeeds
		if err := checker.AnalyzeUnified(res, t.images, mat.U, wopt); err != nil {
			return nil, err
		}
		if !res.Rank.Converged {
			res = &checker.Result{}
			warm = false
			t.warmFallbacks++
			t.opt.Journal.Record("online", "warm-fallback",
				"round", fmt.Sprintf("%d", t.checks+1))
		}
	}
	if !warm {
		if err := checker.AnalyzeUnified(res, t.images, mat.U, opt); err != nil {
			return nil, err
		}
	}
	res.TScan = update // stage-1 role in the online pipeline
	res.Cluster = t.clusterManifest()
	if res.Rank.Converged {
		// Only a converged fixed point is worth warm-starting from;
		// persisting a truncated trajectory used to poison every later
		// check's seed. The dirty set resets with the save — seeds always
		// mean "changed since the ranks we warm-start from", so they keep
		// accumulating across unconverged checks.
		t.saveWarmState(res, mat)
		t.delta.ResetDirty()
		t.lastIters = res.Rank.Iterations
	}
	t.checks++
	t.opt.Journal.Record("online", "round",
		"round", fmt.Sprintf("%d", t.checks),
		"refreshed", fmt.Sprintf("%d", refreshed),
		"warm", fmt.Sprintf("%t", warm),
		"findings", fmt.Sprintf("%d", len(res.Findings)))
	return &CheckResult{
		Result:          res,
		TUpdate:         update,
		InodesRefreshed: refreshed,
		PerServer:       perServer,
		Round:           t.checks,
		Warm:            warm,
	}, nil
}

// warmVector lifts IID-indexed ranks into the current check's GID
// space; vertices first seen this check start at the uniform 1.0.
func (t *Tracker) warmVector(prev []float64, mat *agg.Materialized) []float64 {
	out := make([]float64, len(mat.IIDOfGID))
	for g, iid := range mat.IIDOfGID {
		if int(iid) < len(prev) {
			out[g] = prev[iid]
		} else {
			out[g] = 1
		}
	}
	return out
}

// saveWarmState stores the converged ranks keyed by stable IID for the
// next check's warm start.
func (t *Tracker) saveWarmState(res *checker.Result, mat *agg.Materialized) {
	id := make([]float64, mat.NumIIDs)
	prop := make([]float64, mat.NumIIDs)
	for i := range id {
		id[i], prop[i] = 1, 1
	}
	for g, iid := range mat.IIDOfGID {
		id[iid] = res.Rank.IDRank[g]
		prop[iid] = res.Rank.PropRank[g]
	}
	t.prevID, t.prevProp, t.haveWarm = id, prop, true
}

// clusterManifest assembles the per-server telemetry sections — the
// online counterpart of the wire trailers a TCP run ships home. Each
// server's section carries its lifetime refresh counters and the span
// of its last non-empty update round.
func (t *Tracker) clusterManifest() *checker.ClusterManifest {
	labels := make([]string, len(t.images))
	ships := make([]*wire.Telemetry, len(t.servers))
	for i, st := range t.servers {
		label := st.img.Label()
		labels[i] = label
		ships[i] = &wire.Telemetry{
			Server:   label,
			Snapshot: st.reg.Snapshot().Labeled(label),
			Span:     st.lastSpan,
		}
	}
	return checker.BuildClusterManifest(labels, ships)
}

// TrackerStats is the tracker's exported lifetime accounting — what a
// serving layer reports without reverse-engineering counters out of
// manifests. All fields count committed work only: a round whose feed
// consumption failed mid-server contributes exactly the servers it
// committed.
type TrackerStats struct {
	// Checks counts completed Check calls (the round sequence number of
	// the most recent CheckResult).
	Checks int64 `json:"checks"`
	// UpdateRounds counts update rounds that refreshed at least one
	// inode; idle rounds over an empty feed are not updates.
	UpdateRounds int64 `json:"update_rounds"`
	// InodesRescanned is the total inodes re-parsed or dropped by
	// committed rounds; InodesDropped is the subset that were
	// deallocations.
	InodesRescanned int64 `json:"inodes_rescanned"`
	InodesDropped   int64 `json:"inodes_dropped"`
	// WarmFallbacks counts warm ranking attempts abandoned for a cold
	// redo after exhausting their iteration budget unconverged.
	WarmFallbacks int64 `json:"warm_fallbacks"`
	// Rescans counts completed full re-sweeps (Tracker.Rescan) — the
	// periodic scrub cycles for silent corruption.
	Rescans int64 `json:"rescans"`
	// LastConvergedIters is the most recent converged check's iteration
	// count (0 until a check converges).
	LastConvergedIters int `json:"last_converged_iters"`
}

// Stats reports the tracker's lifetime work.
func (t *Tracker) Stats() TrackerStats {
	return TrackerStats{
		Checks:             t.checks,
		UpdateRounds:       t.updates,
		InodesRescanned:    t.inodesRescan,
		InodesDropped:      t.inodesDropped,
		WarmFallbacks:      t.warmFallbacks,
		Rescans:            t.rescans,
		LastConvergedIters: t.lastIters,
	}
}

// InjectScanFault wraps the tracker's inode re-parse seam with f: every
// scan attempt f elects to fail returns inject.ErrScanInjected instead
// of a partial, exercising the all-or-nothing feed consumption exactly
// as a real mid-sweep read error would. The test and soak hook; wraps
// compose, and the faulted seam survives across rounds.
func (t *Tracker) InjectScanFault(f *inject.ScanFault) {
	base := t.scan
	t.scan = func(img *ldiskfs.Image, ino ldiskfs.Ino) (*scanner.Partial, error) {
		if f.Tick() {
			return nil, fmt.Errorf("%s ino %d: %w", img.Label(), ino, inject.ErrScanInjected)
		}
		return base(img, ino)
	}
}

// WatchOptions configures Tracker.Watch.
type WatchOptions struct {
	// Interval between rounds (<= 0 = one second).
	Interval time.Duration
	// Rounds bounds the loop (<= 0 = until ctx is done).
	Rounds int
	// Quiesce, when non-nil, is held while a round reads the images —
	// the synchronisation point with a live mutator. The simulation's
	// in-process mutators take the same lock; a real deployment would
	// read a quiesced snapshot per round instead.
	Quiesce sync.Locker
	// OnRound observes each completed round.
	OnRound func(round int, res *CheckResult)
	// Gate, when non-nil, is acquired before each round's check and
	// released right after it — the seam a multi-tracker daemon uses to
	// bound how many trackers run rounds concurrently on one shared
	// worker pool. Gate must return the release function, or an error
	// to stop the watch (a cancelled gate context reports ctx.Err()).
	Gate func(ctx context.Context) (release func(), err error)
	// OnError, when non-nil, observes a failed round instead of ending
	// the watch. Returning nil resumes watching at the next tick — a
	// mid-feed scan error leaves the failing server's feed intact, so
	// the next round retries exactly the lost work; returning a non-nil
	// error stops the watch with that error. Nil OnError keeps the
	// original behaviour: the first failed round ends the watch.
	OnError func(round int, err error) error
}

// Watch loops Update→Check at an interval: the `faultyrank -online
// -watch` mode. The first round runs immediately — a watcher that sits
// on the ticker for a full interval before looking at anything leaves
// the window between start and first check unwatched for no reason —
// and subsequent rounds follow the ticker. It returns on ctx
// cancellation (with ctx's error), when the configured number of rounds
// completes, or on the first check error.
func (t *Tracker) Watch(ctx context.Context, opt WatchOptions) error {
	interval := opt.Interval
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for round := 1; opt.Rounds <= 0 || round <= opt.Rounds; round++ {
		if round == 1 {
			// Still honour a cancellation that predates the loop.
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		} else {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-ticker.C:
			}
		}
		res, err := t.gatedCheck(ctx, opt)
		if err != nil {
			if ctx.Err() != nil {
				// The watch is being shut down; a round that died with it
				// (cancelled gate wait, aborted check) is not a retryable
				// round error.
				return ctx.Err()
			}
			if opt.OnError == nil {
				return err
			}
			if stop := opt.OnError(round, err); stop != nil {
				return stop
			}
			continue
		}
		if opt.OnRound != nil {
			opt.OnRound(round, res)
		}
	}
	return nil
}

// gatedCheck runs one round under the watch's gate (when configured):
// acquire a pool slot, check quiesced, release. A gate wait that dies
// with the watch context ends the watch (the ctx check in the loop);
// other gate errors flow through OnError like any round error.
func (t *Tracker) gatedCheck(ctx context.Context, opt WatchOptions) (*CheckResult, error) {
	if opt.Gate == nil {
		return t.checkQuiesced(opt.Quiesce)
	}
	release, err := opt.Gate(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return t.checkQuiesced(opt.Quiesce)
}

func (t *Tracker) checkQuiesced(lock sync.Locker) (*CheckResult, error) {
	if lock != nil {
		lock.Lock()
		defer lock.Unlock()
	}
	return t.Check()
}
