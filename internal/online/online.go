// Package online implements the paper's first future-work item (§VIII):
// an *online* FaultyRank that does not require unmounting the file
// system. Instead of rescanning every server from scratch, a Tracker
// maintains each server's partial graph incrementally by consuming the
// image's dirty-inode feed (the simulation counterpart of Lustre's
// ChangeLog): only the inodes whose metadata changed since the last
// update are re-parsed, and checks run on the maintained snapshot.
//
// The equivalence invariant — an incrementally maintained snapshot is
// byte-identical in content to a full offline rescan — is what makes the
// online mode trustworthy, and is enforced by property tests.
//
// Silent corruption (byte flips that bypass the metadata API) does not
// appear in the change feed, exactly as it would not appear in a real
// changelog; Tracker.Rescan forces a full resweep for that case, and
// deployments would pair the online checker with periodic full scrubs.
package online

import (
	"fmt"
	"sort"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/scanner"
)

// Tracker maintains incrementally-updated partial graphs for a set of
// server images (MDT first, then OSTs — the canonical order).
type Tracker struct {
	images  []*ldiskfs.Image
	servers []*serverState
	opt     checker.Options

	// stats
	updates      int64
	inodesRescan int64
}

// serverState is one server's per-inode scan store.
type serverState struct {
	img *ldiskfs.Image
	// byIno holds the last scan result of each live inode.
	byIno map[ldiskfs.Ino]*scanner.Partial
}

// NewTracker performs the initial full scan (clearing the change feeds)
// and returns a tracker ready for incremental updates.
func NewTracker(images []*ldiskfs.Image, opt checker.Options) (*Tracker, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("online: no images")
	}
	t := &Tracker{images: images, opt: opt}
	for _, img := range images {
		st := &serverState{img: img, byIno: make(map[ldiskfs.Ino]*scanner.Partial)}
		err := img.AllocatedInodes(func(ino ldiskfs.Ino, _ ldiskfs.FileType) error {
			p, err := scanner.ScanInode(img, ino)
			if err != nil {
				return err
			}
			st.byIno[ino] = p
			return nil
		})
		if err != nil {
			return nil, err
		}
		img.ClearDirty()
		t.servers = append(t.servers, st)
	}
	return t, nil
}

// Update consumes every server's dirty-inode feed, re-parsing exactly
// the changed inodes. It returns how many inodes were refreshed.
func (t *Tracker) Update() (int, error) {
	refreshed := 0
	for _, st := range t.servers {
		for _, ino := range st.img.DirtyInodes() {
			if !st.img.InodeAllocated(ino) {
				delete(st.byIno, ino)
				refreshed++
				continue
			}
			p, err := scanner.ScanInode(st.img, ino)
			if err != nil {
				return refreshed, err
			}
			st.byIno[ino] = p
			refreshed++
		}
		st.img.ClearDirty()
	}
	t.updates++
	t.inodesRescan += int64(refreshed)
	return refreshed, nil
}

// Rescan discards the incremental state of every server and re-sweeps
// from the images (the periodic full-scrub escape hatch for silent
// corruption the change feed cannot see).
func (t *Tracker) Rescan() error {
	for _, st := range t.servers {
		st.byIno = make(map[ldiskfs.Ino]*scanner.Partial)
		err := st.img.AllocatedInodes(func(ino ldiskfs.Ino, _ ldiskfs.FileType) error {
			p, err := scanner.ScanInode(st.img, ino)
			if err != nil {
				return err
			}
			st.byIno[ino] = p
			return nil
		})
		if err != nil {
			return err
		}
		st.img.ClearDirty()
	}
	return nil
}

// Partials materialises the maintained per-server partial graphs in
// deterministic (inode) order — content-identical to a full offline
// scan of the current images.
func (t *Tracker) Partials() []*scanner.Partial {
	out := make([]*scanner.Partial, 0, len(t.servers))
	for _, st := range t.servers {
		merged := &scanner.Partial{ServerLabel: st.img.Label()}
		inos := make([]ldiskfs.Ino, 0, len(st.byIno))
		for ino := range st.byIno {
			inos = append(inos, ino)
		}
		sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
		for _, ino := range inos {
			p := st.byIno[ino]
			merged.Objects = append(merged.Objects, p.Objects...)
			merged.Edges = append(merged.Edges, p.Edges...)
			merged.Issues = append(merged.Issues, p.Issues...)
			merged.Stats.InodesScanned += p.Stats.InodesScanned
			merged.Stats.DirentsRead += p.Stats.DirentsRead
			merged.Stats.EdgesEmitted += p.Stats.EdgesEmitted
		}
		out = append(out, merged)
	}
	return out
}

// CheckResult extends the checker result with the incremental timings.
type CheckResult struct {
	*checker.Result
	// TUpdate is the time spent consuming the change feed (replaces the
	// offline T_scan).
	TUpdate time.Duration
	// InodesRefreshed is how many inodes this check re-parsed.
	InodesRefreshed int
}

// Check consumes pending changes and runs the analysis stages on the
// maintained snapshot — the online equivalent of checker.Run, without
// any unmount or full rescan.
func (t *Tracker) Check() (*CheckResult, error) {
	t0 := time.Now()
	refreshed, err := t.Update()
	if err != nil {
		return nil, err
	}
	update := time.Since(t0)
	res := &checker.Result{}
	if err := checker.Analyze(res, t.images, t.Partials(), t.opt); err != nil {
		return nil, err
	}
	res.TScan = update // stage-1 role in the online pipeline
	return &CheckResult{Result: res, TUpdate: update, InodesRefreshed: refreshed}, nil
}

// Stats reports the tracker's lifetime work.
func (t *Tracker) Stats() (updates, inodesRescanned int64) {
	return t.updates, t.inodesRescan
}
