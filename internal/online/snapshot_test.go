package online

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"reflect"
	"testing"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// TestTrackerSnapshotRoundTrip: encode → restore reproduces the
// tracker's durable state exactly — byte-identical re-encoding,
// identical maintained partials, identical counters and warm state.
func TestTrackerSnapshotRoundTrip(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/w/rt", 64<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Check(); err != nil {
		t.Fatal(err)
	}

	blob := tr.EncodeSnapshot()
	if !bytes.Equal(blob, tr.EncodeSnapshot()) {
		t.Fatal("encoding is not deterministic")
	}
	got, err := RestoreTracker(blob, checker.ClusterImages(c), checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if re := got.EncodeSnapshot(); !bytes.Equal(re, blob) {
		t.Fatalf("re-encode differs (%d vs %d bytes)", len(re), len(blob))
	}
	if !reflect.DeepEqual(got.Partials(), tr.Partials()) {
		t.Fatal("maintained partials diverge after restore")
	}
	if got.haveWarm != tr.haveWarm || got.lastIters != tr.lastIters ||
		!reflect.DeepEqual(got.prevID, tr.prevID) ||
		!reflect.DeepEqual(got.prevProp, tr.prevProp) {
		t.Fatal("warm-start state diverges after restore")
	}
	if got.Stats() != tr.Stats() {
		t.Fatalf("lifetime counters diverge: %+v vs %+v", got.Stats(), tr.Stats())
	}
}

// TestTrackerSnapshotRejectsDamage: truncations, header forgeries, a
// corrupted delta section and a forged warm flag all fail with named
// errors; restoring against the wrong images fails the label check.
func TestTrackerSnapshotRejectsDamage(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	blob := tr.EncodeSnapshot()
	images := checker.ClusterImages(c)
	opt := checker.DefaultOptions()

	for n := 0; n < len(blob); n++ {
		if _, err := RestoreTracker(blob[:n], images, opt); err == nil {
			t.Fatalf("truncation to %d bytes restored successfully", n)
		} else if !errors.Is(err, ErrTrackerSnapshot) && !errors.Is(err, ErrTrackerSnapshotVersion) {
			t.Fatalf("truncation to %d bytes: unnamed error %v", n, err)
		}
	}

	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := RestoreTracker(bad, images, opt); !errors.Is(err, ErrTrackerSnapshotVersion) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), blob...)
	bad[4] = TrackerCodecVersion + 1
	if _, err := RestoreTracker(bad, images, opt); !errors.Is(err, ErrTrackerSnapshotVersion) {
		t.Fatalf("future version: %v", err)
	}
	if _, err := RestoreTracker(append(append([]byte(nil), blob...), 0), images, opt); !errors.Is(err, ErrTrackerSnapshot) {
		t.Fatalf("trailing byte: %v", err)
	}

	// Stomp the nested delta section's magic: the envelope is fine, the
	// payload is not.
	bad = append([]byte(nil), blob...)
	bad[9] = 'X'
	if _, err := RestoreTracker(bad, images, opt); !errors.Is(err, ErrTrackerSnapshot) {
		t.Fatalf("corrupt delta section: %v", err)
	}

	// Restoring against a different image set must fail by label: wrong
	// count, and right images in the wrong order.
	if _, err := RestoreTracker(blob, images[:1], opt); !errors.Is(err, ErrTrackerSnapshotLabels) {
		t.Fatalf("server count mismatch: %v", err)
	}
	swapped := append([]*ldiskfs.Image(nil), images...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if _, err := RestoreTracker(blob, swapped, opt); !errors.Is(err, ErrTrackerSnapshotLabels) {
		t.Fatalf("server order mismatch: %v", err)
	}
}

// TestSaveLoadState: the -state directory round trip, including the
// missing-file signal a fresh deployment starts from.
func TestSaveLoadState(t *testing.T) {
	c := newCluster(t)
	tr := newTracker(t, c)
	if _, err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	images := checker.ClusterImages(c)
	opt := checker.DefaultOptions()

	if _, err := LoadState(dir, images, opt); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty state dir: want fs.ErrNotExist, got %v", err)
	}
	if err := tr.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(dir, images, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.EncodeSnapshot(), tr.EncodeSnapshot()) {
		t.Fatal("loaded state diverges from saved state")
	}
}

// scriptRound applies one deterministic mutation batch to a cluster —
// the workload both the interrupted and the uninterrupted run replay.
func scriptRound(t *testing.T, c *lustre.Cluster, round int) {
	t.Helper()
	switch round {
	case 0:
		for i := 0; i < 3; i++ {
			if _, err := c.Create(fmt.Sprintf("/w/s0-%d", i), 2*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	case 1:
		if err := c.Unlink("/w/s0-1"); err != nil {
			t.Fatal(err)
		}
		// Scenarios that fabricate no fresh FIDs (the injector's bogus-FID
		// counter is process-global, which would make two scripted runs
		// diverge spuriously).
		if _, err := inject.Inject(c, inject.UnrefStaleObject, "/w/f03"); err != nil {
			t.Fatal(err)
		}
	case 2:
		// The mutations that land while the interrupted tracker is down:
		// they reach it only through the persisted feed on restart.
		if _, err := c.Create("/w/s2-while-down", 2*64<<10); err != nil {
			t.Fatal(err)
		}
		if _, err := inject.Inject(c, inject.UnrefLOVEADropped, "/w/s0-0"); err != nil {
			t.Fatal(err)
		}
	case 3:
		if err := c.Unlink("/w/f07"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillRestartMidWatchResumesIdentically is the durability
// acceptance property: a watch killed after round 2 (its state saved, the
// tracker dropped, mutations landing while it is down) and restored
// from the snapshot produces, round for round, findings identical to an
// uninterrupted run over an identically-scripted cluster — and ends in
// byte-identical durable state.
func TestKillRestartMidWatchResumesIdentically(t *testing.T) {
	const rounds = 4
	run := func(interruptAfter int) ([][]checker.Finding, []byte) {
		c := newCluster(t)
		tr := newTracker(t, c)
		dir := t.TempDir()
		var findings [][]checker.Finding
		for r := 0; r < rounds; r++ {
			scriptRound(t, c, r)
			res, err := tr.Check()
			if err != nil {
				t.Fatal(err)
			}
			findings = append(findings, res.Findings)
			if err := tr.SaveState(dir); err != nil {
				t.Fatal(err)
			}
			if interruptAfter == r+1 {
				// The "kill": drop the live tracker and resume from disk.
				// The cluster's change feeds live on, exactly as a real
				// filesystem's changelog would across a checker restart.
				tr = nil
				restored, err := LoadState(dir, checker.ClusterImages(c), checker.DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				tr = restored
			}
		}
		return findings, tr.EncodeSnapshot()
	}

	baseline, baseState := run(0)
	resumed, resumedState := run(2)

	for r := 0; r < rounds; r++ {
		if !reflect.DeepEqual(baseline[r], resumed[r]) {
			t.Fatalf("round %d findings diverge after kill/restart:\n uninterrupted %v\n resumed       %v",
				r+1, baseline[r], resumed[r])
		}
	}
	if !bytes.Equal(baseState, resumedState) {
		t.Fatal("final durable state diverges after kill/restart")
	}
}

// FuzzDecodeTrackerSnapshot asserts the codec's canonical-form
// invariant: any blob that decodes must re-encode byte-identically, and
// no input may panic or over-allocate.
func FuzzDecodeTrackerSnapshot(f *testing.F) {
	c, err := lustre.NewCluster(lustre.Config{NumOSTs: 2, StripeSize: 64 << 10, StripeCount: -1})
	if err != nil {
		f.Fatal(err)
	}
	c.MkdirAll("/w")
	if _, err := c.Create("/w/seed", 64<<10); err != nil {
		f.Fatal(err)
	}
	tr, err := NewTracker(checker.ClusterImages(c), checker.DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tr.EncodeSnapshot())
	if _, err := tr.Check(); err != nil {
		f.Fatal(err)
	}
	f.Add(tr.EncodeSnapshot())
	f.Add(tr.EncodeSnapshot()[:40])
	f.Fuzz(func(t *testing.T, blob []byte) {
		s, err := decodeTrackerSnapshot(blob)
		if err != nil {
			if s != nil {
				t.Fatal("decode returned both a snapshot and an error")
			}
			return
		}
		if re := encodeTrackerSnapshot(s); !bytes.Equal(re, blob) {
			t.Fatalf("decode accepted a non-canonical blob (%d bytes, re-encodes to %d)",
				len(blob), len(re))
		}
	})
}
