package online

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"faultyrank/internal/agg"
	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/scanner"
)

// This file is the tracker's durable form: a versioned binary snapshot
// of everything a killed-and-restarted watcher needs to resume from the
// change feed with identical findings — the delta builder (interner,
// cached contributions, accumulated dirty set, via its own codec), the
// last converged warm-start ranks, and the lifetime counters. It
// follows the same codec discipline as the delta and telemetry blobs:
// versioned ("FRSN"), canonical (a blob either fails to decode or
// re-encodes byte-identically — the fuzz target's invariant), and
// bounded (untrusted counts are checked against the remaining payload
// before any allocation).
//
// Deliberately NOT persisted: the per-server telemetry registries and
// spans. Those are process-lifetime observability — a restarted watcher
// reports the work *it* did, not the work a dead process once did.

// TrackerCodecVersion identifies the binary layout of tracker
// snapshots. Bump on any incompatible change.
// v2 added the inodesDropped and rescans lifetime counters.
const TrackerCodecVersion = 2

var trackerMagic = [4]byte{'F', 'R', 'S', 'N'}

// ErrTrackerSnapshot is wrapped by every decode failure caused by a
// malformed blob (truncation, corruption, non-canonical form).
var ErrTrackerSnapshot = errors.New("malformed tracker snapshot")

// ErrTrackerSnapshotVersion is wrapped when the magic or version does
// not match this build; the caller falls back to a cold NewTracker.
var ErrTrackerSnapshotVersion = errors.New("unsupported tracker snapshot version")

// ErrTrackerSnapshotLabels is wrapped when a structurally valid
// snapshot does not describe the images it is being restored against —
// restoring mdt0's state onto ost1 must fail loudly, not corrupt both.
var ErrTrackerSnapshotLabels = errors.New("tracker snapshot does not match images")

func errTracker(format string, args ...any) error {
	return fmt.Errorf("online: %s: %w", fmt.Sprintf(format, args...), ErrTrackerSnapshot)
}

// trackerSnapshot is the decoded durable state, independent of any
// image set — what the codec (and its fuzz target) round-trips.
type trackerSnapshot struct {
	delta            *agg.DeltaBuilder
	haveWarm         bool
	lastIters        int
	checks, updates  int64
	inodesRescan     int64
	inodesDropped    int64
	warmFallbacks    int64
	rescans          int64
	prevID, prevProp []float64
}

func encodeTrackerSnapshot(s *trackerSnapshot) []byte {
	buf := append([]byte(nil), trackerMagic[:]...)
	buf = append(buf, TrackerCodecVersion)

	deltaBlob := s.delta.EncodeBinary()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(deltaBlob)))
	buf = append(buf, deltaBlob...)

	if s.haveWarm {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.lastIters))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.checks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.updates))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.inodesRescan))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.inodesDropped))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.warmFallbacks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.rescans))

	if s.haveWarm {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.prevID)))
		for _, v := range s.prevID {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range s.prevProp {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// sdec is the bounded decoder for tracker blobs.
type sdec struct {
	b   []byte
	off int
	err error
}

func (d *sdec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = errTracker("truncated at offset %d", d.off)
		return false
	}
	return true
}

func (d *sdec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *sdec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *sdec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *sdec) remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.b) - d.off
}

func decodeTrackerSnapshot(blob []byte) (*trackerSnapshot, error) {
	d := &sdec{b: blob}
	if !d.need(5) {
		return nil, d.err
	}
	if [4]byte(blob[:4]) != trackerMagic {
		return nil, fmt.Errorf("online: bad tracker snapshot magic %q: %w", blob[:4], ErrTrackerSnapshotVersion)
	}
	if v := blob[4]; v != TrackerCodecVersion {
		return nil, fmt.Errorf("online: tracker snapshot version %d (have %d): %w", v, TrackerCodecVersion, ErrTrackerSnapshotVersion)
	}
	d.off = 5

	deltaLen := int(d.u32())
	if !d.need(deltaLen) {
		return nil, d.err
	}
	delta, err := agg.DecodeDeltaBuilder(blob[d.off : d.off+deltaLen])
	if err != nil {
		// The nested delta codec has its own named errors; wrap them
		// under ours so callers can treat the whole blob uniformly. A
		// version mismatch inside an FRSN v1 envelope is corruption, not
		// a mixed-version deployment.
		return nil, errTracker("delta section: %v", err)
	}
	d.off += deltaLen

	s := &trackerSnapshot{delta: delta}
	switch d.u8() {
	case 0:
	case 1:
		s.haveWarm = true
	default:
		if d.err == nil {
			return nil, errTracker("warm flag is neither 0 nor 1")
		}
	}
	s.lastIters = int(d.u64())
	s.checks = int64(d.u64())
	s.updates = int64(d.u64())
	s.inodesRescan = int64(d.u64())
	s.inodesDropped = int64(d.u64())
	s.warmFallbacks = int64(d.u64())
	s.rescans = int64(d.u64())
	if d.err != nil {
		return nil, d.err
	}

	if s.haveWarm {
		n := d.u32()
		if d.err == nil && uint64(n)*16 > uint64(d.remaining()) {
			return nil, errTracker("implausible warm vector length %d", n)
		}
		s.prevID = make([]float64, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			s.prevID = append(s.prevID, math.Float64frombits(d.u64()))
		}
		s.prevProp = make([]float64, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			s.prevProp = append(s.prevProp, math.Float64frombits(d.u64()))
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(blob) {
		return nil, errTracker("%d trailing bytes", len(blob)-d.off)
	}
	return s, nil
}

// EncodeSnapshot serialises the tracker's durable state. The blob is
// deterministic for a given state: saving twice without an intervening
// update produces identical bytes.
func (t *Tracker) EncodeSnapshot() []byte {
	return encodeTrackerSnapshot(&trackerSnapshot{
		delta:         t.delta,
		haveWarm:      t.haveWarm,
		lastIters:     t.lastIters,
		checks:        t.checks,
		updates:       t.updates,
		inodesRescan:  t.inodesRescan,
		inodesDropped: t.inodesDropped,
		warmFallbacks: t.warmFallbacks,
		rescans:       t.rescans,
		prevID:        t.prevID,
		prevProp:      t.prevProp,
	})
}

// RestoreTracker rebuilds a tracker from an EncodeSnapshot blob without
// any rescan: the maintained snapshot, warm-start ranks and dirty-seed
// accumulator come from the blob, and the next Update resumes from
// whatever the images' change feeds accumulated while the previous
// process was down. The images must be the same cluster the snapshot
// was taken from, in the same canonical order (checked by label).
func RestoreTracker(blob []byte, images []*ldiskfs.Image, opt checker.Options) (*Tracker, error) {
	s, err := decodeTrackerSnapshot(blob)
	if err != nil {
		return nil, err
	}
	labels := s.delta.Labels()
	if len(labels) != len(images) {
		return nil, fmt.Errorf("online: snapshot has %d servers, images %d: %w",
			len(labels), len(images), ErrTrackerSnapshotLabels)
	}
	for i, img := range images {
		if img.Label() != labels[i] {
			return nil, fmt.Errorf("online: snapshot server %d is %q, image is %q: %w",
				i, labels[i], img.Label(), ErrTrackerSnapshotLabels)
		}
	}
	if s.haveWarm && len(s.prevID) != len(s.prevProp) {
		return nil, errTracker("warm vectors disagree in length (%d vs %d)",
			len(s.prevID), len(s.prevProp))
	}
	if opt.Core.MaxIterations == 0 {
		opt.Core = core.DefaultOptions()
	}
	t := &Tracker{
		images:        images,
		opt:           opt,
		delta:         s.delta,
		prevID:        s.prevID,
		prevProp:      s.prevProp,
		haveWarm:      s.haveWarm,
		scan:          scanner.ScanInode,
		lastIters:     s.lastIters,
		updates:       s.updates,
		inodesRescan:  s.inodesRescan,
		inodesDropped: s.inodesDropped,
		checks:        s.checks,
		warmFallbacks: s.warmFallbacks,
		rescans:       s.rescans,
	}
	for _, img := range images {
		t.servers = append(t.servers, newServerState(img))
	}
	return t, nil
}

// stateFileName is the snapshot's name inside a -state directory.
const stateFileName = "tracker.snap"

// SaveState writes the snapshot into dir atomically (temp file +
// rename), so a crash mid-save leaves the previous snapshot intact.
func (t *Tracker) SaveState(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("online: save state: %w", err)
	}
	tmp := filepath.Join(dir, stateFileName+".tmp")
	if err := os.WriteFile(tmp, t.EncodeSnapshot(), 0o644); err != nil {
		return fmt.Errorf("online: save state: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, stateFileName)); err != nil {
		return fmt.Errorf("online: save state: %w", err)
	}
	t.opt.Journal.Record("online", "snapshot-save", "dir", dir)
	return nil
}

// LoadState restores a tracker from dir. A missing snapshot reports
// fs.ErrNotExist (via os.ReadFile) — the caller's cue to start cold
// with NewTracker instead.
func LoadState(dir string, images []*ldiskfs.Image, opt checker.Options) (*Tracker, error) {
	blob, err := os.ReadFile(filepath.Join(dir, stateFileName))
	if err != nil {
		return nil, err
	}
	return RestoreTracker(blob, images, opt)
}
