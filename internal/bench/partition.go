package bench

import (
	"fmt"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/workload"
)

// PartitionRow is one partition count's line of the rank-scaling
// artifact: how the BSP superstep execution behaves as the CSR is
// sharded across 1/2/4/8 rank workers. The k=1 row is the legacy
// single-process kernel — the baseline every partitioned row must match
// finding for finding (the decomposition is exact, so any divergence is
// a bug, and PartitionMeasure fails rather than tabulating it).
type PartitionRow struct {
	K          int
	Transport  string
	Iterations int
	Supersteps int
	// CutEdges counts row entries whose column lives on another
	// partition; ghost traffic is proportional to it.
	CutEdges int64
	// UpBytes/DownBytes are run totals of encoded superstep frames;
	// StepBytes is their per-superstep average — the steady-state
	// exchange volume one iteration costs.
	UpBytes, DownBytes, StepBytes int64
	RankSeconds                   float64
	Findings                      int
	// MaxWorkerRSS is the largest spawned worker's peak resident set in
	// bytes (spawned runs only, 0 otherwise) — the observable of the
	// ROADMAP item-1 trajectory: per-worker RSS should approach 1/K of
	// the single process as shards shrink.
	MaxWorkerRSS int64
}

// partitionCounts is the sweep the artifact reports.
var partitionCounts = []int{1, 2, 4, 8}

// PartitionMeasure ages one 1 MDT + 8 OST cluster, then runs the TCP
// checker once per partition count. Scan and aggregation repeat each
// run but only the rank stage is tabulated; the per-superstep exchange
// numbers come from the run's rank manifest. A non-empty spawn path
// execs that frrankd binary once per partition (k > 1) instead of
// running the workers in process, and tabulates each cohort's largest
// per-process peak RSS.
func PartitionMeasure(scale Scale, workers int, spawn string) ([]PartitionRow, error) {
	geometry := ldiskfs.CompactGeometry()
	if scale == ScalePaper {
		geometry = ldiskfs.DefaultGeometry()
	}
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1, Geometry: geometry,
	})
	if err != nil {
		return nil, err
	}
	target := ingestTarget(scale)
	if _, err := workload.Age(c, workload.AgeSpec{
		TargetMDTInodes: target, ChurnFraction: 0.15, Seed: target,
	}); err != nil {
		return nil, err
	}
	images := checker.ClusterImages(c)

	var rows []PartitionRow
	var base *checker.Result
	for _, k := range partitionCounts {
		opt := checker.DefaultOptions()
		opt.UseTCP = true
		opt.Workers = workers
		opt.ChunkSize = 1024
		opt.RankWorkers = k
		opt.OpTimeout = 30 * time.Second
		if spawn != "" && k > 1 {
			opt.RankSpawn = spawn
		}
		res, err := checker.Run(images, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: partition run k=%d: %w", k, err)
		}
		if base == nil {
			base = res
		} else if err := samePartitionFindings(base, res); err != nil {
			return nil, fmt.Errorf("bench: partition run k=%d diverged: %w", k, err)
		}
		row := PartitionRow{
			K:           k,
			Transport:   "single",
			Iterations:  res.Rank.Iterations,
			Supersteps:  res.Rank.Iterations,
			RankSeconds: res.TRank.Seconds(),
			Findings:    len(res.Findings),
		}
		if man := res.RankExec; man != nil {
			row.Transport = man.Transport
			row.Supersteps = man.Supersteps
			row.CutEdges = man.CutEdges
			row.UpBytes = man.UpBytes
			row.DownBytes = man.DownBytes
			if man.Supersteps > 0 {
				row.StepBytes = (man.UpBytes + man.DownBytes) / int64(man.Supersteps)
			}
			if man.Fallback != "" {
				return nil, fmt.Errorf("bench: partition run k=%d fell back: %s", k, man.Fallback)
			}
			for _, rss := range man.WorkerRSS {
				if rss > row.MaxWorkerRSS {
					row.MaxWorkerRSS = rss
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// samePartitionFindings demands bit-exact rank equality between two
// runs of the same images — the artifact's correctness cross-check.
func samePartitionFindings(a, b *checker.Result) error {
	if len(a.Findings) != len(b.Findings) {
		return fmt.Errorf("%d findings vs baseline's %d", len(b.Findings), len(a.Findings))
	}
	for i := range a.Findings {
		x, y := a.Findings[i], b.Findings[i]
		if x.Kind != y.Kind || x.FID != y.FID || x.Score != y.Score {
			return fmt.Errorf("finding %d: [%v] %v %.6f vs baseline [%v] %v %.6f",
				i, y.Kind, y.FID, y.Score, x.Kind, x.FID, x.Score)
		}
	}
	if a.Rank.Iterations != b.Rank.Iterations {
		return fmt.Errorf("%d iterations vs baseline's %d", b.Rank.Iterations, a.Rank.Iterations)
	}
	return nil
}

// PartitionTable renders the partition-count scaling sweep.
func PartitionTable(rows []PartitionRow) *Table {
	t := &Table{
		Title: "Rank-stage partition scaling (BSP supersteps over TCP, 1 MDT + 8 OSTs)",
		Columns: []string{
			"k", "transport", "iters", "supersteps", "cut-edges",
			"up MiB", "down MiB", "KiB/step", "rank(s)", "worker MiB", "findings",
		},
	}
	for _, r := range rows {
		workerRSS := "-"
		if r.MaxWorkerRSS > 0 {
			workerRSS = mib(r.MaxWorkerRSS)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.K),
			r.Transport,
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%d", r.Supersteps),
			fmt.Sprintf("%d", r.CutEdges),
			mib(r.UpBytes),
			mib(r.DownBytes),
			fmt.Sprintf("%.1f", float64(r.StepBytes)/(1<<10)),
			fmt.Sprintf("%.4f", r.RankSeconds),
			workerRSS,
			fmt.Sprintf("%d", r.Findings),
		})
	}
	t.Notes = append(t.Notes,
		"k=1 is the legacy single-process kernel; partitioned rows are bit-identical to it by construction (the run fails if not)",
		"cut-edges drive the ghost exchange; KiB/step is the steady per-iteration frame volume (canonical encoded sizes)",
		"rank(s) includes partitioning, the superstep exchange and classification — the paper's T_FR column shape",
		"worker MiB is the largest spawned frrankd process's peak RSS (-rank-spawn runs; '-' when workers ran in process)")
	return t
}
