package bench

import (
	"fmt"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/rmat"
	"faultyrank/internal/workload"
)

// Dataset is one Table III input graph.
type Dataset struct {
	Name     string
	Vertices int
	Edges    []graph.Edge
}

// datasetSpecs returns the Table III datasets at the requested scale.
// At ScalePaper the RMAT scales match the paper (23-26); Amazon and
// Road-Net stand-ins match the published vertex/edge counts.
func datasetSpecs(scale Scale) []func() Dataset {
	type spec struct {
		amazonN, roadW, roadH int
		rmatScales            []int
	}
	s := map[Scale]spec{
		ScaleSmoke:   {amazonN: 8000, roadW: 120, roadH: 100, rmatScales: []int{13, 14}},
		ScaleDefault: {amazonN: 100000, roadW: 700, roadH: 700, rmatScales: []int{16, 17, 18, 19}},
		ScalePaper:   {amazonN: 403393, roadW: 1590, roadH: 1240, rmatScales: []int{23, 24, 25, 26}},
	}[scale]
	var out []func() Dataset
	out = append(out, func() Dataset {
		return Dataset{
			Name:     "Amazon-like",
			Vertices: s.amazonN,
			Edges:    workload.AmazonLike(s.amazonN, 12, 1001),
		}
	})
	out = append(out, func() Dataset {
		return Dataset{
			Name:     "Road-Net-like",
			Vertices: s.roadW * s.roadH,
			Edges:    workload.RoadNetLike(s.roadW, s.roadH, 1002),
		}
	})
	for _, sc := range s.rmatScales {
		sc := sc
		out = append(out, func() Dataset {
			p := rmat.Graph500(sc, 8, 1003)
			return Dataset{
				Name:     fmt.Sprintf("RMAT-%d", sc),
				Vertices: p.NumVertices(),
				Edges:    rmat.Generate(p, 0),
			}
		})
	}
	return out
}

// Table3 lists the benchmark graphs and their sizes (paper Table III).
func Table3(scale Scale) *Table {
	t := &Table{
		Title:   "Table III — graph inputs and their key properties",
		Columns: []string{"dataset", "vertices", "edges"},
	}
	for _, mk := range datasetSpecs(scale) {
		d := mk()
		t.Rows = append(t.Rows, []string{
			d.Name, fmt.Sprintf("%d", d.Vertices), fmt.Sprintf("%d", len(d.Edges)),
		})
	}
	if scale != ScalePaper {
		t.Notes = append(t.Notes, "scaled-down sizes; run with -scale paper for the paper's RMAT-23..26")
	}
	return t
}

// Table4Row is one measured dataset of Table IV.
type Table4Row struct {
	Name        string
	Vertices    int
	Edges       int64
	BuildTime   time.Duration
	IterTime    time.Duration
	Iterations  int
	MemoryBytes int64
}

// MeasureDataset builds the bidirected graph and runs FaultyRank once,
// reporting the paper's Table IV columns.
func MeasureDataset(name string, n int, edges []graph.Edge, workers int) Table4Row {
	t0 := time.Now()
	b := graph.NewBidirectedUntyped(n, edges, workers)
	build := time.Since(t0)

	opt := core.DefaultOptions()
	opt.Workers = workers
	t1 := time.Now()
	res := core.Run(b, opt)
	iter := time.Since(t1)

	mem := b.MemoryBytes() + 4*8*int64(n) // + the four rank arrays
	return Table4Row{
		Name: name, Vertices: n, Edges: b.Fwd.NumEdges(),
		BuildTime: build, IterTime: iter, Iterations: res.Iterations,
		MemoryBytes: mem,
	}
}

// Table4 measures FaultyRank performance and memory per dataset (paper
// Table IV).
func Table4(scale Scale, workers int) *Table {
	t := &Table{
		Title: "Table IV — FaultyRank performance and memory footprint",
		Columns: []string{
			"dataset", "vertices", "edges", "build (s)", "iterations (s)", "iters", "memory (MiB)",
		},
	}
	for _, mk := range datasetSpecs(scale) {
		d := mk()
		r := MeasureDataset(d.Name, d.Vertices, d.Edges, workers)
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Vertices), fmt.Sprintf("%d", r.Edges),
			fmt.Sprintf("%.3f", r.BuildTime.Seconds()),
			fmt.Sprintf("%.3f", r.IterTime.Seconds()),
			fmt.Sprintf("%d", r.Iterations),
			mib(r.MemoryBytes),
		})
	}
	t.Notes = append(t.Notes,
		"paper (RMAT-26, deg 8): build 315s, iterate 275s, 26.5 GB on a 2019 Xeon — compare scaling shape, not absolutes")
	return t
}

// Table5 fixes the RMAT scale and varies the average degree (paper
// Table V: RMAT-26, degrees 4-32).
func Table5(scale Scale, workers int) *Table {
	rmatScale := map[Scale]int{ScaleSmoke: 13, ScaleDefault: 19, ScalePaper: 26}[scale]
	t := &Table{
		Title: fmt.Sprintf("Table V — RMAT-%d with varying average degree", rmatScale),
		Columns: []string{
			"avg degree", "edges", "build (s)", "iterations (s)", "iters", "memory (MiB)",
		},
	}
	for _, deg := range []int{4, 8, 16, 32} {
		p := rmat.Graph500(rmatScale, deg, 1003)
		edges := rmat.Generate(p, workers)
		r := MeasureDataset(fmt.Sprintf("deg%d", deg), p.NumVertices(), edges, workers)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", deg), fmt.Sprintf("%d", r.Edges),
			fmt.Sprintf("%.3f", r.BuildTime.Seconds()),
			fmt.Sprintf("%.3f", r.IterTime.Seconds()),
			fmt.Sprintf("%d", r.Iterations),
			mib(r.MemoryBytes),
		})
	}
	t.Notes = append(t.Notes,
		"paper (RMAT-26): time and memory grow near-linearly in degree; check the same slope here")
	return t
}

// Table2 reproduces the worked example (paper Table II / Fig. 3).
func Table2() *Table {
	const a, b, c, d = 0, 1, 2, 3
	edges := []graph.Edge{
		{Src: a, Dst: b, Kind: graph.KindDirent},
		{Src: a, Dst: c, Kind: graph.KindDirent},
		{Src: b, Dst: a, Kind: graph.KindLinkEA},
		{Src: d, Dst: b, Kind: graph.KindFilterFID},
	}
	bd := graph.NewBidirected(4, edges, 0)
	opt := core.DefaultOptions()
	res := core.Run(bd, opt)
	id, prop := res.NormalizedID(), res.NormalizedProp()
	paperID := []string{"0.35", "0.39", "0.20", "0.05"}
	paperProp := []string{"0.39", "0.35", "0.05", "0.20"}
	t := &Table{
		Title:   "Table II — ID and Property ranks of the Fig. 3 example graph",
		Columns: []string{"object", "id_rank", "paper", "prop_rank", "paper"},
	}
	names := []string{"a", "b", "c", "d"}
	for v := 0; v < 4; v++ {
		t.Rows = append(t.Rows, []string{
			names[v],
			fmt.Sprintf("%.2f", id[v]), paperID[v],
			fmt.Sprintf("%.2f", prop[v]), paperProp[v],
		})
	}
	t.Notes = append(t.Notes,
		"the faulty fields (c.prop, d.id) collapse to the vector minima exactly as in the paper;",
		"absolute values differ slightly: the paper's printed numbers imply an unweighted phase-B distribution (see EXPERIMENTS.md)")
	return t
}
