package bench

import (
	"fmt"

	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/workload"
)

// TableDNE measures FaultyRank end-to-end on the same logical namespace
// spread over an increasing number of metadata targets — the extension
// experiment beyond the paper's single-MDS testbed. The merged graph is
// identical regardless of placement (FIDs are cluster-unique, §IV-B);
// what changes is scan parallelism: per-server scanners run
// concurrently, so distributing the namespace shrinks T_scan.
func TableDNE(scale Scale, workers int) (*Table, error) {
	files := map[Scale]int{ScaleSmoke: 1500, ScaleDefault: 30000, ScalePaper: 300000}[scale]
	t := &Table{
		Title: fmt.Sprintf("Extension — DNE scaling (%d-file namespace over N MDTs)", files),
		Columns: []string{
			"MDTs", "MDT inodes", "vertices", "edges", "T_scan (s)", "T_graph (s)", "T_FR (s)", "total (s)",
		},
	}
	var baseVertices int
	for _, nMDT := range []int{1, 2, 4} {
		c, err := lustre.NewCluster(lustre.Config{
			NumOSTs: 8, NumMDTs: nMDT, StripeSize: 64 << 10, StripeCount: -1,
			Geometry: ldiskfs.CompactGeometry(),
		})
		if err != nil {
			return nil, err
		}
		if _, err := workload.Populate(c, workload.DefaultTreeSpec(files, 77)); err != nil {
			return nil, err
		}
		opt := checker.DefaultOptions()
		opt.Workers = workers
		res, err := checker.RunCluster(c, opt)
		if err != nil {
			return nil, err
		}
		if len(res.Findings) != 0 {
			return nil, fmt.Errorf("bench: DNE cluster with %d MDTs inconsistent", nMDT)
		}
		if baseVertices == 0 {
			baseVertices = res.Stats.Vertices
		} else if res.Stats.Vertices != baseVertices {
			// Placement must not change the logical namespace size.
			return nil, fmt.Errorf("bench: vertex count drifted across placements (%d vs %d)",
				res.Stats.Vertices, baseVertices)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nMDT),
			fmt.Sprintf("%d", c.MDTInodes()),
			fmt.Sprintf("%d", res.Stats.Vertices),
			fmt.Sprintf("%d", res.Stats.Edges),
			fmt.Sprintf("%.3f", res.TScan.Seconds()),
			fmt.Sprintf("%.3f", res.TGraph.Seconds()),
			fmt.Sprintf("%.3f", res.TRank.Seconds()),
			fmt.Sprintf("%.3f", res.Total().Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"identical logical namespace per row; only metadata placement changes — the FID-keyed graph merge is placement-agnostic",
		"on one host the scan is already fully parallel, so the expected result is *zero placement overhead* (equal vertices, edges and times); on a real cluster the per-server scanners shard across machines")
	return t, nil
}
