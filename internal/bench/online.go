package bench

import (
	"fmt"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/online"
	"faultyrank/internal/workload"
)

// OnlineRow is one delta-size measurement: the latency of an
// incremental online check after mutating `DeltaFiles` files, against a
// cold full recheck (scan + merge + rank from scratch) of the same
// images.
type OnlineRow struct {
	DeltaFiles  int
	Refreshed   int // inodes the online update actually re-parsed
	Update      time.Duration
	Graph       time.Duration
	Rank        time.Duration
	Online      time.Duration // Update + Graph + Rank
	OnlineIters int
	// Vertices is the unified graph size N — the per-iteration cost of a
	// full-sweep kernel, for comparison against FrontierTouched.
	Vertices int
	// FrontierTouched is the incremental kernel's total per-vertex
	// equation evaluations across all iterations (-1 when the round ran
	// the full-sweep kernel, e.g. a cold fallback).
	FrontierTouched int64
	// FrontierSweeps counts the incremental kernel's full O(N) sweeps —
	// the final verification sweep plus any saturated iterations.
	FrontierSweeps int
	Cold           time.Duration
	ColdIters      int
	Speedup        float64
}

// OnlineMeasure ages a cluster, hands it to an online Tracker (initial
// full scan plus one warm-up check), then sweeps delta sizes: each
// round creates a batch of files and times the incremental check
// against a cold checker.Run over the same images. Findings are
// cross-checked between the two paths; a divergence fails the bench.
func OnlineMeasure(scale Scale, workers int) ([]OnlineRow, error) {
	geometry := ldiskfs.CompactGeometry()
	if scale == ScalePaper {
		geometry = ldiskfs.DefaultGeometry()
	}
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1, Geometry: geometry,
	})
	if err != nil {
		return nil, err
	}
	target := ingestTarget(scale)
	if _, err := workload.Age(c, workload.AgeSpec{
		TargetMDTInodes: target, ChurnFraction: 0.15, Seed: target,
	}); err != nil {
		return nil, err
	}
	if err := c.MkdirAll("/online-bench"); err != nil {
		return nil, err
	}

	opt := checker.DefaultOptions()
	opt.Workers = workers
	tr, err := online.NewTracker(checker.ClusterImages(c), opt)
	if err != nil {
		return nil, err
	}
	// Warm-up check: the first check is cold by definition (no previous
	// ranks); the sweep measures the steady state.
	if _, err := tr.Check(); err != nil {
		return nil, err
	}

	deltas := []int{
		max(1, int(target/10_000)),
		max(2, int(target/1_000)),
		max(4, int(target/100)),
	}
	var rows []OnlineRow
	seq := 0
	for _, d := range deltas {
		for i := 0; i < d; i++ {
			seq++
			if _, err := c.Create(fmt.Sprintf("/online-bench/d%06d", seq), 64<<10); err != nil {
				return nil, err
			}
		}
		res, err := tr.Check()
		if err != nil {
			return nil, err
		}
		cold, err := checker.Run(checker.ClusterImages(c), opt)
		if err != nil {
			return nil, err
		}
		if len(res.Findings) != len(cold.Findings) {
			return nil, fmt.Errorf("bench: online found %d findings, cold recheck %d",
				len(res.Findings), len(cold.Findings))
		}
		row := OnlineRow{
			DeltaFiles:      d,
			Refreshed:       res.InodesRefreshed,
			Update:          res.TUpdate,
			Graph:           res.TGraph,
			Rank:            res.TRank,
			Online:          res.TUpdate + res.TGraph + res.TRank,
			OnlineIters:     res.Rank.Iterations,
			Vertices:        res.Unified.N(),
			FrontierTouched: -1,
			Cold:            cold.Total(),
			ColdIters:       cold.Rank.Iterations,
		}
		if fr := res.Rank.Frontier; fr != nil {
			row.FrontierTouched = fr.Touched
			row.FrontierSweeps = fr.FullSweeps
		}
		row.Speedup = float64(row.Cold) / float64(row.Online)
		rows = append(rows, row)
	}
	return rows, nil
}

// OnlineTable renders the delta sweep.
func OnlineTable(rows []OnlineRow) *Table {
	t := &Table{
		Title: "Online checking — incremental delta check vs. cold full recheck",
		Columns: []string{
			"delta files", "inodes refreshed", "T_update", "T_graph", "T_rank",
			"online total", "iters", "vertices", "frontier touched", "full sweeps",
			"cold total", "cold iters", "speedup",
		},
	}
	for _, r := range rows {
		touched := "-"
		if r.FrontierTouched >= 0 {
			touched = fmt.Sprintf("%d", r.FrontierTouched)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.DeltaFiles),
			fmt.Sprintf("%d", r.Refreshed),
			fmt.Sprintf("%.4f", r.Update.Seconds()),
			fmt.Sprintf("%.4f", r.Graph.Seconds()),
			fmt.Sprintf("%.4f", r.Rank.Seconds()),
			fmt.Sprintf("%.4f", r.Online.Seconds()),
			fmt.Sprintf("%d", r.OnlineIters),
			fmt.Sprintf("%d", r.Vertices),
			touched,
			fmt.Sprintf("%d", r.FrontierSweeps),
			fmt.Sprintf("%.4f", r.Cold.Seconds()),
			fmt.Sprintf("%d", r.ColdIters),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		"online: change-feed re-parse of the delta + cached-contribution graph assembly + warm-started frontier ranking; cold: full scan + merge + uniform-start ranking over the same images",
		"T_update is O(delta): it should stay roughly flat in absolute terms while the cold scan grows with the image — and warm-started iteration counts should sit at or below the cold counts",
		"'frontier touched' is the warm kernel's total per-vertex equation evaluations; a full-sweep kernel would pay vertices x iters x 2 phases, so touched well below that gap is the O(delta) win ('-' = the round fell back to a full-sweep cold run)",
		"both paths are cross-checked to produce the same number of findings before a row is reported")
	return t
}
