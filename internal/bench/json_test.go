package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
)

func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{Title: "T", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	path, err := WriteArtifact(dir, "demo", ScaleSmoke, tab)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_demo.json" {
		t.Errorf("path = %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if a.Schema != ArtifactSchema || a.Name != "demo" || a.Scale != "smoke" {
		t.Errorf("artifact identity wrong: %+v", a)
	}
	if len(a.Tables) != 1 || a.Tables[0].Rows[0][0] != "1" {
		t.Errorf("tables did not round-trip: %+v", a.Tables)
	}
}

func TestWriteArtifactRejectsEmpty(t *testing.T) {
	if _, err := WriteArtifact(t.TempDir(), "empty", ScaleSmoke); err == nil {
		t.Fatal("empty artifact accepted")
	}
}

// TestMeasureIngestObservedCounters: the instrumented ingest run must
// report exactly what the scan produced — the counters are a second,
// independently-batched tally of the same sweep.
func TestMeasureIngestObservedCounters(t *testing.T) {
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 2, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Create("/d/f"+string(rune('a'+i)), 2*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	images := []*ldiskfs.Image{c.MDT.Img}
	for _, ost := range c.OSTs {
		images = append(images, ost.Img)
	}

	var wantInodes, wantEdges int64
	for _, img := range images {
		p, err := scanner.ScanImage(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantInodes += p.Stats.InodesScanned
		wantEdges += p.Stats.EdgesEmitted
	}

	reg := telemetry.NewRegistry()
	if _, err := MeasureIngestObserved(images, 0, 0, reg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("scanner_inodes_scanned_total").Value(); got != wantInodes {
		t.Errorf("inodes counter = %d, want %d", got, wantInodes)
	}
	if got := reg.Counter("scanner_edges_emitted_total").Value(); got != wantEdges {
		t.Errorf("edges counter = %d, want %d", got, wantEdges)
	}
	if got := reg.Counter("agg_chunks_total").Value(); got == 0 {
		t.Error("builder saw no chunks")
	}
	if got := reg.Gauge("agg_interned_fids").Value(); got == 0 {
		t.Error("interner gauge not set")
	}
}
