// Package bench regenerates the paper's evaluation artifacts — Fig. 7
// and Tables II through VI — on the simulated substrate. Each experiment
// returns structured rows plus a formatted text table whose columns
// match the paper's, so results can be compared side by side (shape,
// not absolute numbers: the substrate is a simulator, not the authors'
// 9-node testbed).
package bench

import (
	"fmt"
	"strings"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleSmoke is test-suite sizing (seconds).
	ScaleSmoke Scale = iota
	// ScaleDefault is the default CLI sizing (a few minutes).
	ScaleDefault
	// ScalePaper is the paper's sizing where feasible (RMAT-23..26 need
	// tens of GB of RAM and hours; use on a large machine only).
	ScalePaper
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "smoke":
		return ScaleSmoke, nil
	case "default", "":
		return ScaleDefault, nil
	case "paper", "full":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("bench: unknown scale %q (smoke|default|paper)", s)
	}
}

// Table is a rendered experiment result. The JSON tags are the bench
// artifact contract (internal/bench/json.go); renaming them breaks
// BENCH_*.json consumers.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func mib(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/(1<<20))
}
