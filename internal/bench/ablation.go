package bench

import (
	"fmt"

	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/inject"
)

// AblationConfig is one algorithm variant under test.
type AblationConfig struct {
	Name   string
	Mutate func(*core.Options)
}

// AblationConfigs are the design choices DESIGN.md calls out, each
// toggled against the paper-faithful default.
func AblationConfigs() []AblationConfig {
	return []AblationConfig{
		{Name: "default", Mutate: func(o *core.Options) {}},
		{Name: "w=1.0 (unweighted)", Mutate: func(o *core.Options) { o.UnpairedWeight = 1.0 }},
		{Name: "leaky distribution", Mutate: func(o *core.Options) { o.LeakyDistribution = true }},
		{Name: "no smoothing", Mutate: func(o *core.Options) { o.Smoothing = 0 }},
		{Name: "strict attribution", Mutate: func(o *core.Options) { o.AttributionSlack = 1.0 }},
		{Name: "threshold=0.2", Mutate: func(o *core.Options) { o.Threshold = 0.2 }},
		{Name: "sink-to-all", Mutate: func(o *core.Options) { o.SinkPolicy = core.SinkToAll }},
	}
}

// AblationMatrix runs every Fig. 7 scenario under every configuration
// and reports whether the ground-truth root cause was identified —
// showing which design choices the detection quality actually depends
// on.
func AblationMatrix(scale Scale) (*Table, error) {
	configs := AblationConfigs()
	t := &Table{
		Title:   "Ablation — root-cause identification per algorithm variant",
		Columns: append([]string{"scenario"}, configNames(configs)...),
	}
	for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
		row := []string{s.String()}
		for _, cfg := range configs {
			c, err := fig7Cluster(scale)
			if err != nil {
				return nil, err
			}
			target, err := fig7Target(c)
			if err != nil {
				return nil, err
			}
			inj, err := inject.Inject(c, s, target)
			if err != nil {
				return nil, err
			}
			opt := checker.DefaultOptions()
			cfg.Mutate(&opt.Core)
			res, err := checker.RunCluster(c, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, yesNo(groundTruthIdentified(res, inj)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"every column should read yes for a robust configuration; divergences localise which knob a scenario depends on")
	return t, nil
}

func configNames(cfgs []AblationConfig) []string {
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name
	}
	return out
}

// AblationFalsePositives runs every configuration against a *clean*
// cluster and counts findings — the complementary robustness check.
func AblationFalsePositives(scale Scale) (*Table, error) {
	configs := AblationConfigs()
	t := &Table{
		Title:   "Ablation — findings on a fully consistent cluster (false positives)",
		Columns: []string{"config", "findings", "suspects", "ambiguous"},
	}
	for _, cfg := range configs {
		c, err := fig7Cluster(scale)
		if err != nil {
			return nil, err
		}
		opt := checker.DefaultOptions()
		cfg.Mutate(&opt.Core)
		res, err := checker.RunCluster(c, opt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			fmt.Sprintf("%d", len(res.Findings)),
			fmt.Sprintf("%d", len(res.Report.Suspects)),
			fmt.Sprintf("%d", len(res.Report.Ambiguous)),
		})
	}
	return t, nil
}
