package bench

import (
	"fmt"
	"path/filepath"

	"faultyrank/internal/telemetry"
)

// ArtifactSchema identifies the JSON layout of a bench artifact file.
const ArtifactSchema = "faultyrank/bench/v1"

// Artifact is the machine-readable form of one frbench run: the same
// structured rows the text tables render, plus enough identity (schema,
// artifact name, scale) for downstream tooling — CI trend tracking,
// plotting — to consume BENCH_<name>.json without parsing aligned text.
type Artifact struct {
	Schema string   `json:"schema"`
	Name   string   `json:"name"`
	Scale  string   `json:"scale"`
	Tables []*Table `json:"tables"`
}

// ScaleName returns the CLI spelling of a Scale.
func ScaleName(s Scale) string {
	switch s {
	case ScaleSmoke:
		return "smoke"
	case ScalePaper:
		return "paper"
	default:
		return "default"
	}
}

// WriteArtifact writes the tables of one artifact as
// dir/BENCH_<name>.json (atomically, via a temp file) and returns the
// path written.
func WriteArtifact(dir, name string, scale Scale, tables ...*Table) (string, error) {
	if len(tables) == 0 {
		return "", fmt.Errorf("bench: artifact %q has no tables", name)
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	a := &Artifact{
		Schema: ArtifactSchema,
		Name:   name,
		Scale:  ScaleName(scale),
		Tables: tables,
	}
	if err := telemetry.WriteJSON(path, a); err != nil {
		return "", err
	}
	return path, nil
}
