package bench

import (
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	cases := map[string]Scale{
		"smoke": ScaleSmoke, "default": ScaleDefault, "": ScaleDefault,
		"paper": ScalePaper, "full": ScalePaper, "PAPER": ScalePaper,
	}
	for in, want := range cases {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"xxxxxxx", "1"}, {"y", "2"}},
		Notes:   []string{"hello"},
	}
	out := tab.Render()
	for _, want := range []string{"=== T ===", "long-column", "xxxxxxx", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Reproduction(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// c.prop and d.id are the minima (column 3 is prop, column 1 is id).
	if tab.Rows[2][3] >= tab.Rows[0][3] || tab.Rows[3][1] >= tab.Rows[0][1] {
		t.Errorf("faulty fields not minimal: %+v", tab.Rows)
	}
}

func TestTable3Smoke(t *testing.T) {
	tab := Table3(ScaleSmoke)
	if len(tab.Rows) != 4 { // amazon, roadnet, 2 rmat scales
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] == "0" || r[2] == "0" {
			t.Errorf("empty dataset row: %v", r)
		}
	}
}

func TestTable4And5Smoke(t *testing.T) {
	t4 := Table4(ScaleSmoke, 0)
	if len(t4.Rows) != 4 {
		t.Fatalf("t4 rows = %d", len(t4.Rows))
	}
	t5 := Table5(ScaleSmoke, 0)
	if len(t5.Rows) != 4 {
		t.Fatalf("t5 rows = %d", len(t5.Rows))
	}
	// Degree sweep: edges must grow with degree.
	if !(t5.Rows[0][1] < t5.Rows[3][1]) && len(t5.Rows[0][1]) >= len(t5.Rows[3][1]) {
		t.Errorf("edge counts not increasing: %v", t5.Rows)
	}
}

func TestFig7CompareSmoke(t *testing.T) {
	rows, err := Fig7Compare(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.FRIdentified {
			t.Errorf("%v: FaultyRank missed the root cause", r.Scenario)
		}
		if !r.FRRepaired {
			t.Errorf("%v: FaultyRank repair did not restore consistency", r.Scenario)
		}
	}
	// The paper's headline contrast: LFSCK strands data or recreates
	// stubs in most scenarios.
	var lfDamage int
	for _, r := range rows {
		if r.LFStranded > 0 || r.LFStubs > 0 {
			lfDamage++
		}
	}
	if lfDamage < 4 {
		t.Errorf("LFSCK handled too many scenarios cleanly (%d damaged) — baseline too strong?", lfDamage)
	}
	out := Fig7Table(rows).Render()
	if !strings.Contains(out, "dangling") {
		t.Error("table render incomplete")
	}
}

func TestAblationFalsePositivesSmoke(t *testing.T) {
	tab, err := AblationFalsePositives(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(AblationConfigs()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] != "0" {
			t.Errorf("config %q has %s findings on a clean cluster", r[0], r[1])
		}
	}
}

func TestAblationMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix runs 8 scenarios × all configs")
	}
	tab, err := AblationMatrix(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for i, cell := range row[1:] {
			if cell != "yes" {
				t.Errorf("%s under %q: root cause missed", row[0], tab.Columns[i+1])
			}
		}
	}
}

func TestTableDNESmoke(t *testing.T) {
	tab, err := TableDNE(ScaleSmoke, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Placement must not change the logical graph.
	for _, r := range tab.Rows[1:] {
		if r[2] != tab.Rows[0][2] || r[3] != tab.Rows[0][3] {
			t.Errorf("graph drifted across placements: %v vs %v", r, tab.Rows[0])
		}
	}
}

func TestTable6Smoke(t *testing.T) {
	rows, err := Table6Measure(ScaleSmoke, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FaultyRank <= 0 || r.LFSCK <= 0 {
			t.Errorf("missing timings: %+v", r)
		}
		if r.TScan+r.TGraph+r.TFR != r.FaultyRank {
			t.Errorf("stage times do not sum: %+v", r)
		}
	}
	if rows[1].MDTInodes <= rows[0].MDTInodes {
		t.Errorf("aging did not grow: %+v", rows)
	}
	out := Table6(rows).Render()
	if !strings.Contains(out, "speedup") {
		t.Error("table render incomplete")
	}
}
