package bench

import (
	"fmt"

	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lfsck"
	"faultyrank/internal/lustre"
	"faultyrank/internal/repair"
	"faultyrank/internal/workload"
)

// Fig7Row is one scenario's comparison between FaultyRank and LFSCK.
type Fig7Row struct {
	Scenario inject.Scenario

	// FaultyRank outcomes.
	FRIdentified bool // the ground-truth faulty field was named
	FRRepaired   bool // after applying repairs, the FS is consistent
	FRPreserved  bool // no data was stranded (no quarantine stubs needed)

	// LFSCK outcomes.
	LFConsistent bool // the FS is consistent after LFSCK's rules ran
	LFStranded   int  // objects/files parked in lost+found
	LFStubs      int  // empty stub objects recreated (data loss)
	// LFOverwrites counts MDS-wins metadata rewrites. When the ground
	// truth was a corrupted identity, these "repairs" paper over the
	// fault by accepting the wrong id as the new truth — the FS ends up
	// consistent but semantically wrong.
	LFOverwrites int
}

// fig7Cluster builds the functional-evaluation cluster.
func fig7Cluster(scale Scale) (*lustre.Cluster, error) {
	files := map[Scale]int{ScaleSmoke: 40, ScaleDefault: 400, ScalePaper: 4000}[scale]
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		return nil, err
	}
	if _, err := workload.Populate(c, workload.DefaultTreeSpec(files, 1234)); err != nil {
		return nil, err
	}
	return c, nil
}

// fig7Target picks a multi-stripe file to corrupt.
func fig7Target(c *lustre.Cluster) (string, error) {
	// The populate naming is deterministic; walk for a >=2-stripe file.
	var target string
	var walk func(dir string) error
	walk = func(dir string) error {
		if target != "" {
			return nil
		}
		ents, err := c.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, de := range ents {
			p := dir + "/" + de.Name
			if dir == "/" {
				p = "/" + de.Name
			}
			switch de.Type {
			case ldiskfs.TypeDir:
				if err := walk(p); err != nil {
					return err
				}
			case ldiskfs.TypeFile:
				if ent, err := c.Stat(p); err == nil && ent.Size > 2*64<<10 {
					target = p
					return nil
				}
			}
			if target != "" {
				return nil
			}
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return "", err
	}
	if target == "" {
		return "", fmt.Errorf("bench: no multi-stripe file found")
	}
	return target, nil
}

// Fig7Compare runs every Fig. 7 scenario through both checkers on fresh
// identically-populated clusters.
func Fig7Compare(scale Scale) ([]Fig7Row, error) {
	var rows []Fig7Row
	for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
		row := Fig7Row{Scenario: s}

		// --- FaultyRank path ------------------------------------------
		c, err := fig7Cluster(scale)
		if err != nil {
			return nil, err
		}
		target, err := fig7Target(c)
		if err != nil {
			return nil, err
		}
		inj, err := inject.Inject(c, s, target)
		if err != nil {
			return nil, err
		}
		images := checker.ClusterImages(c)
		res, err := checker.Run(images, checker.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row.FRIdentified = groundTruthIdentified(res, inj)
		eng := repair.NewEngine(images, res)
		eng.Apply(res.Findings)
		verify, err := checker.Run(images, checker.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row.FRRepaired = verify.Stats.UnpairedEdges == 0 && len(verify.Findings) == 0
		row.FRPreserved = s != inject.UnrefStaleObject // recreation is still lost+found-visible
		if s == inject.UnrefStaleObject {
			// The lost file's objects are preserved and re-owned, which
			// counts as preserved even though the path moved.
			row.FRPreserved = row.FRRepaired
		}

		// --- LFSCK path -----------------------------------------------
		c2, err := fig7Cluster(scale)
		if err != nil {
			return nil, err
		}
		target2, err := fig7Target(c2)
		if err != nil {
			return nil, err
		}
		if _, err := inject.Inject(c2, s, target2); err != nil {
			return nil, err
		}
		images2 := checker.ClusterImages(c2)
		lres, err := lfsck.Run(images2, lfsck.Options{})
		if err != nil {
			return nil, err
		}
		row.LFStranded = len(lres.ActionsOfKind(lfsck.NSLostFound)) +
			len(lres.ActionsOfKind(lfsck.LayoutLostFoundObject))
		row.LFStubs = len(lres.ActionsOfKind(lfsck.LayoutRecreateObject))
		row.LFOverwrites = len(lres.ActionsOfKind(lfsck.NSFixLinkEA)) +
			len(lres.ActionsOfKind(lfsck.NSFixDirentFID)) +
			len(lres.ActionsOfKind(lfsck.LayoutFixFilterFID))
		after, err := checker.Run(images2, checker.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row.LFConsistent = after.Stats.UnpairedEdges == 0

		rows = append(rows, row)
	}
	return rows, nil
}

// groundTruthIdentified checks whether the checker named the injected
// fault: the right FID (old or new identity) with the right field, or
// the equivalent structural finding for the stale/duplicate scenarios.
func groundTruthIdentified(res *checker.Result, inj *inject.Injection) bool {
	switch inj.Scenario {
	case inject.UnrefStaleObject:
		return len(res.FindingsOfKind(checker.StaleObject)) > 0
	case inject.DoubleRefLMA:
		return res.HasFinding(checker.DuplicateIdentity, inj.VictimFID)
	}
	want := checker.FaultyProperty
	if inj.Field == core.FieldID {
		want = checker.FaultyID
	}
	for _, f := range res.FindingsOfKind(want) {
		if f.FID == inj.VictimFID || (!inj.NewFID.IsZero() && f.FID == inj.NewFID) {
			return true
		}
	}
	return false
}

// Fig7Table renders the comparison in the paper's layout.
func Fig7Table(rows []Fig7Row) *Table {
	t := &Table{
		Title: "Fig. 7 — FaultyRank vs LFSCK on eight inconsistency scenarios",
		Columns: []string{
			"scenario", "category",
			"FR:root-cause", "FR:repaired",
			"LFSCK:consistent", "LFSCK:lost+found", "LFSCK:stubs", "LFSCK:overwrites",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario.String(), r.Scenario.Category(),
			yesNo(r.FRIdentified), yesNo(r.FRRepaired),
			yesNo(r.LFConsistent), fmt.Sprintf("%d", r.LFStranded),
			fmt.Sprintf("%d", r.LFStubs), fmt.Sprintf("%d", r.LFOverwrites),
		})
	}
	t.Notes = append(t.Notes,
		"paper claim: FaultyRank identifies and repairs all eight; LFSCK parks objects in lost+found or repairs only the MDS-wins cases",
		"an id-corruption row with LFSCK:consistent=yes and overwrites>0 means LFSCK accepted the wrong identity as the new truth")
	return t
}
