package bench

import (
	"fmt"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lfsck"
	"faultyrank/internal/lustre"
	"faultyrank/internal/workload"
)

// Table6Row is one aged-file-system measurement point.
type Table6Row struct {
	MDTInodes   int64
	TotalInodes int64
	LFSCK       time.Duration
	// LFSCKBatched is the modernised baseline with batched RPCs
	// (BatchSize 64) — the MSST'19 optimisation ablation.
	LFSCKBatched time.Duration
	FaultyRank   time.Duration
	TScan        time.Duration
	TGraph       time.Duration
	TFR          time.Duration
}

// table6Points returns the MDT-inode targets per scale. The paper ages
// its testbed from 0.65 M to 4.2 M inodes; scaled runs keep the same
// geometric spread.
func table6Points(scale Scale) []int64 {
	switch scale {
	case ScaleSmoke:
		return []int64{1000, 2000}
	case ScalePaper:
		return []int64{651_553, 1_099_717, 1_555_351, 2_007_043, 2_231_988, 3_335_597, 4_235_925}
	default:
		return []int64{10_000, 20_000, 40_000, 60_000, 90_000, 130_000}
	}
}

// Table6Measure ages a cluster through the inode targets and, at each
// point, times a full LFSCK run and a full FaultyRank run (scan,
// transfer+graph, iterate) on copies of the images so neither checker
// sees the other's repairs. useTCP selects the deployment-faithful data
// path for both checkers.
func Table6Measure(scale Scale, useTCP bool, workers int) ([]Table6Row, error) {
	geometry := ldiskfs.CompactGeometry()
	if scale == ScalePaper {
		geometry = ldiskfs.DefaultGeometry()
	}
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1, Geometry: geometry,
	})
	if err != nil {
		return nil, err
	}
	var rows []Table6Row
	for _, target := range table6Points(scale) {
		if _, err := workload.Age(c, workload.AgeSpec{
			TargetMDTInodes: target, ChurnFraction: 0.15, Seed: target,
		}); err != nil {
			return nil, err
		}
		row := Table6Row{MDTInodes: c.MDTInodes(), TotalInodes: c.TotalInodes()}

		// LFSCK on a deep copy of the images (it repairs as it goes —
		// here there is nothing to repair, but stay isolated anyway).
		lfImages, err := copyImages(checker.ClusterImages(c))
		if err != nil {
			return nil, err
		}
		lres, err := lfsck.Run(lfImages, lfsck.Options{UseTCP: useTCP})
		if err != nil {
			return nil, err
		}
		row.LFSCK = lres.Duration

		// The batched-RPC baseline on another copy.
		lbImages, err := copyImages(checker.ClusterImages(c))
		if err != nil {
			return nil, err
		}
		lbres, err := lfsck.Run(lbImages, lfsck.Options{UseTCP: useTCP, BatchSize: 64})
		if err != nil {
			return nil, err
		}
		row.LFSCKBatched = lbres.Duration

		// FaultyRank end-to-end.
		frImages, err := copyImages(checker.ClusterImages(c))
		if err != nil {
			return nil, err
		}
		opt := checker.DefaultOptions()
		opt.UseTCP = useTCP
		opt.Workers = workers
		fres, err := checker.Run(frImages, opt)
		if err != nil {
			return nil, err
		}
		row.FaultyRank = fres.Total()
		row.TScan, row.TGraph, row.TFR = fres.TScan, fres.TGraph, fres.TRank
		rows = append(rows, row)
	}
	return rows, nil
}

// copyImages deep-copies server images so checker runs stay isolated.
func copyImages(images []*ldiskfs.Image) ([]*ldiskfs.Image, error) {
	out := make([]*ldiskfs.Image, len(images))
	for i, img := range images {
		raw := append([]byte(nil), img.Bytes()...)
		cp, err := ldiskfs.FromBytes(raw)
		if err != nil {
			return nil, err
		}
		out[i] = cp
	}
	return out, nil
}

// Table6 renders the measurements in the paper's layout.
func Table6(rows []Table6Row) *Table {
	t := &Table{
		Title: "Table VI — execution time (s) of FaultyRank and LFSCK on the aged cluster",
		Columns: []string{
			"MDS inodes", "total inodes", "LFSCK", "LFSCK-batched", "FaultyRank",
			"T_scan", "T_graph", "T_FR", "speedup", "vs batched",
		},
	}
	for _, r := range rows {
		speedup := float64(r.LFSCK) / float64(r.FaultyRank)
		vsBatched := float64(r.LFSCKBatched) / float64(r.FaultyRank)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.MDTInodes),
			fmt.Sprintf("%d", r.TotalInodes),
			fmt.Sprintf("%.2f", r.LFSCK.Seconds()),
			fmt.Sprintf("%.2f", r.LFSCKBatched.Seconds()),
			fmt.Sprintf("%.2f", r.FaultyRank.Seconds()),
			fmt.Sprintf("%.2f", r.TScan.Seconds()),
			fmt.Sprintf("%.2f", r.TGraph.Seconds()),
			fmt.Sprintf("%.2f", r.TFR.Seconds()),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%.1fx", vsBatched),
		})
	}
	t.Notes = append(t.Notes,
		"paper: FaultyRank is 5-17x faster than LFSCK at every aging point; the gap comes from bulk transfer vs per-object RPCs",
		"LFSCK-batched is the MSST'19-style modernisation (64 FIDs per round trip): it narrows but does not close the gap — the remaining cost is LFSCK's per-inode evaluation and repeated metadata reads")
	return t
}
