package bench

import (
	"fmt"
	"strings"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/workload"
)

// NetPathRow is one scenario measurement of the hardened scan→collect
// network path: a clean TCP run, then one run per injected network
// fault, each completing in degraded mode under the stage deadline.
type NetPathRow struct {
	Scenario string
	Total    time.Duration
	TScan    time.Duration
	Frames   int64
	Bytes    int64
	Retries  int64
	Covered  int
	Servers  int
	Missing  []string
}

// netPathTimeout returns the scan-stage deadline per scale. The stall
// scenario waits this out in full, so it dominates bench wall time.
func netPathTimeout(scale Scale) time.Duration {
	if scale == ScaleSmoke {
		return 1 * time.Second
	}
	return 3 * time.Second
}

// NetPathMeasure ages one cluster and drives the TCP checker through
// the network fault scenarios (clean, crash-before-connect,
// crash-mid-stream, stall, corrupt frame), one injected scanner fault
// per run, all in degraded mode under a scan deadline. Scanning is
// read-only, so every run reuses the same aged images; the rows report
// the paper-style stage timing plus the wire counters and coverage.
func NetPathMeasure(scale Scale, workers int) ([]NetPathRow, error) {
	geometry := ldiskfs.CompactGeometry()
	if scale == ScalePaper {
		geometry = ldiskfs.DefaultGeometry()
	}
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1, Geometry: geometry,
	})
	if err != nil {
		return nil, err
	}
	target := ingestTarget(scale)
	if _, err := workload.Age(c, workload.AgeSpec{
		TargetMDTInodes: target, ChurnFraction: 0.15, Seed: target,
	}); err != nil {
		return nil, err
	}
	images := checker.ClusterImages(c)
	victim := images[len(images)-1].Label() // last OST loses its stream

	scenarios := []struct {
		name  string
		fault *inject.NetFault
	}{
		{"clean", nil},
		{inject.NetCrashBeforeConnect.String(), &inject.NetFault{Scenario: inject.NetCrashBeforeConnect}},
		{inject.NetCrashMidStream.String(), &inject.NetFault{Scenario: inject.NetCrashMidStream, AfterChunks: 1}},
		{inject.NetStallMidStream.String(), &inject.NetFault{Scenario: inject.NetStallMidStream, AfterChunks: 1}},
		{inject.NetCorruptFrame.String(), &inject.NetFault{Scenario: inject.NetCorruptFrame, AfterChunks: 1}},
	}
	var rows []NetPathRow
	for _, sc := range scenarios {
		opt := checker.DefaultOptions()
		opt.UseTCP = true
		opt.Workers = workers
		opt.ChunkSize = 1024 // several chunks per stream so mid-stream faults fire
		opt.ScanTimeout = netPathTimeout(scale)
		opt.AllowDegraded = true
		if sc.fault != nil {
			opt.NetFaults = map[string]*inject.NetFault{victim: sc.fault}
		}
		res, err := checker.Run(images, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: net scenario %s: %w", sc.name, err)
		}
		rows = append(rows, NetPathRow{
			Scenario: sc.name,
			Total:    res.Total(),
			TScan:    res.TScan,
			Frames:   res.Net.Frames,
			Bytes:    res.Net.Bytes,
			Retries:  res.Net.DialRetries,
			Covered:  res.Coverage.Complete(),
			Servers:  res.Coverage.Total,
			Missing:  res.Coverage.Missing,
		})
	}
	return rows, nil
}

// NetPathTable renders the scenario measurements.
func NetPathTable(rows []NetPathRow) *Table {
	t := &Table{
		Title: "Network path under injected scanner faults (degraded mode, deadline-bounded)",
		Columns: []string{
			"scenario", "total(s)", "T_scan(s)", "frames", "MiB", "retries", "coverage", "missing",
		},
	}
	for _, r := range rows {
		missing := "-"
		if len(r.Missing) > 0 {
			missing = strings.Join(r.Missing, ",")
		}
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%.2f", r.Total.Seconds()),
			fmt.Sprintf("%.2f", r.TScan.Seconds()),
			fmt.Sprintf("%d", r.Frames),
			mib(r.Bytes),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d/%d", r.Covered, r.Servers),
			missing,
		})
	}
	t.Notes = append(t.Notes,
		"one injected fault on the last OST's chunk stream per row; the checker completes from the surviving streams",
		"the stall row waits out the full scan deadline by design — that is the bound being demonstrated")
	return t
}
