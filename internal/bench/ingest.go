package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"faultyrank/internal/agg"
	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
	"faultyrank/internal/workload"
)

// IngestRow is one worker-count measurement of the streaming ingestion
// pipeline: chunked parallel scan → sharded merge → CSR build, the
// scan→CSR span of the checker without ranking.
type IngestRow struct {
	Workers int
	Scan    time.Duration // concurrent chunked scans, all servers
	Merge   time.Duration // sharded FID interning + fills
	Build   time.Duration // contention-free CSR construction
	Total   time.Duration
	Speedup float64 // total of the first (slowest-worker) row / this total
}

// ingestTarget returns the MDT-inode aging target per scale.
func ingestTarget(scale Scale) int64 {
	switch scale {
	case ScaleSmoke:
		return 2_000
	case ScalePaper:
		return 1_000_000
	default:
		return 130_000
	}
}

// IngestMeasure ages one cluster, then runs the ingestion pipeline over
// its images once per worker count, timing each stage. Every run uses
// the identical aged images and (by the merge determinism guarantee)
// produces the identical unified graph, so the rows differ only in
// wall time.
func IngestMeasure(scale Scale, workerCounts []int) ([]IngestRow, error) {
	geometry := ldiskfs.CompactGeometry()
	if scale == ScalePaper {
		geometry = ldiskfs.DefaultGeometry()
	}
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1, Geometry: geometry,
	})
	if err != nil {
		return nil, err
	}
	target := ingestTarget(scale)
	if _, err := workload.Age(c, workload.AgeSpec{
		TargetMDTInodes: target, ChurnFraction: 0.15, Seed: target,
	}); err != nil {
		return nil, err
	}
	images := checker.ClusterImages(c)

	var rows []IngestRow
	for _, w := range workerCounts {
		row, err := MeasureIngest(images, w, 0)
		if err != nil {
			return nil, err
		}
		if len(rows) > 0 {
			row.Speedup = float64(rows[0].Total) / float64(row.Total)
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MeasureIngest times one scan→merge→build run over already-prepared
// images (the Go benchmark in the repo root reuses it on a shared aged
// cluster).
func MeasureIngest(images []*ldiskfs.Image, workers, chunkSize int) (IngestRow, error) {
	return MeasureIngestObserved(images, workers, chunkSize, nil)
}

// MeasureIngestObserved is MeasureIngest against a telemetry registry:
// scanner and aggregator instruments resolve from reg, making this the
// instrumented arm of the telemetry overhead benchmark (reg == nil is
// the uninstrumented arm — nil instruments, one branch per event).
func MeasureIngestObserved(images []*ldiskfs.Image, workers, chunkSize int, reg *telemetry.Registry) (IngestRow, error) {
	return MeasureIngestJournaled(images, workers, chunkSize, reg, nil)
}

// ingestJournalEvery mirrors the checker's chunk-event sampling stride
// so the benchmark measures the deployed configuration.
const ingestJournalEvery = 64

// MeasureIngestJournaled is the flight-recorder arm of the overhead
// benchmark: the instrumented ingest with a journal attached to the
// scanner's sampled chunk events and the aggregator's merge milestones.
// A nil j leaves the run journal-free (exactly MeasureIngestObserved);
// a non-nil j needs reg, since the journal rides on the registry-backed
// instruments.
func MeasureIngestJournaled(images []*ldiskfs.Image, workers, chunkSize int, reg *telemetry.Registry, j *telemetry.Journal) (IngestRow, error) {
	row := IngestRow{Workers: workers}
	labels := make([]string, len(images))
	for i, img := range images {
		labels[i] = img.Label()
	}
	builder := agg.NewBuilder(labels)
	var ins *scanner.Instr
	if reg != nil {
		ins = scanner.NewInstr(reg)
		ins.AttachJournal(j, ingestJournalEvery)
		m := agg.NewMetrics(reg)
		m.Journal = j
		builder.Observe(m)
	}

	t0 := time.Now()
	errs := make([]error, len(images))
	var wg sync.WaitGroup
	for i, img := range images {
		wg.Add(1)
		go func(i int, img *ldiskfs.Image) {
			defer wg.Done()
			errs[i] = scanner.ScanImageToSinkInstr(context.Background(), img, workers, chunkSize, builder, ins)
		}(i, img)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return row, err
		}
	}
	row.Scan = time.Since(t0)

	t1 := time.Now()
	u, err := builder.Finish(workers)
	if err != nil {
		return row, err
	}
	row.Merge = time.Since(t1)

	t2 := time.Now()
	g := u.Build(workers)
	row.Build = time.Since(t2)
	if g.N() != u.N() {
		return row, fmt.Errorf("bench: CSR lost vertices (%d != %d)", g.N(), u.N())
	}
	row.Total = row.Scan + row.Merge + row.Build
	return row, nil
}

// IngestTable renders the worker sweep.
func IngestTable(rows []IngestRow) *Table {
	t := &Table{
		Title: "Ingestion scaling — scan→CSR wall time vs. workers",
		Columns: []string{
			"workers", "T_scan", "T_merge", "T_build", "total", "speedup",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.3f", r.Scan.Seconds()),
			fmt.Sprintf("%.3f", r.Merge.Seconds()),
			fmt.Sprintf("%.3f", r.Build.Seconds()),
			fmt.Sprintf("%.3f", r.Total.Seconds()),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host has %d usable core(s); speedup saturates at the core count — on a single-core host expect ~1.0x", runtime.NumCPU()),
		"every row produces a byte-identical GID space and CSR (merge determinism), so rows differ in wall time only")
	return t
}
