package bench

import (
	"fmt"
	"strings"

	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/workload"
)

// skewBarWidth is the character budget of the per-server bar column.
const skewBarWidth = 20

// SkewRow is one server's line of the cluster-skew artifact: the
// per-server telemetry columns the TCP run shipped home in its wire
// trailer, as assembled into the checker's cluster manifest.
type SkewRow struct {
	Server       string
	Missing      bool
	ScanSeconds  float64
	Inodes       int64
	Frames       int64
	Bytes        int64
	Redials      int64
	StallSeconds float64
}

// SkewSummary is the straggler attribution over the rows.
type SkewSummary struct {
	Straggler      string
	Fastest        string
	SlowestSeconds float64
	FastestSeconds float64
	MeanSeconds    float64
	StragglerRatio float64
}

// SkewMeasure ages one 1 MDT + 8 OST cluster and runs the TCP checker
// once, then reads the per-server sections and skew analysis off the
// run's cluster manifest. Unlike the net-path table this injects no
// faults — the point is the attribution itself: which server set the
// scan stage's wall clock and by how much.
func SkewMeasure(scale Scale, workers int) ([]SkewRow, SkewSummary, error) {
	geometry := ldiskfs.CompactGeometry()
	if scale == ScalePaper {
		geometry = ldiskfs.DefaultGeometry()
	}
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1, Geometry: geometry,
	})
	if err != nil {
		return nil, SkewSummary{}, err
	}
	target := ingestTarget(scale)
	if _, err := workload.Age(c, workload.AgeSpec{
		TargetMDTInodes: target, ChurnFraction: 0.15, Seed: target,
	}); err != nil {
		return nil, SkewSummary{}, err
	}

	opt := checker.DefaultOptions()
	opt.UseTCP = true
	opt.Workers = workers
	opt.ChunkSize = 1024
	res, err := checker.Run(checker.ClusterImages(c), opt)
	if err != nil {
		return nil, SkewSummary{}, fmt.Errorf("bench: skew run: %w", err)
	}
	m := res.Cluster
	if m == nil {
		return nil, SkewSummary{}, fmt.Errorf("bench: skew run produced no cluster manifest")
	}
	var rows []SkewRow
	for _, s := range m.Servers {
		rows = append(rows, SkewRow{
			Server:       s.Server,
			Missing:      s.Missing,
			ScanSeconds:  s.ScanSeconds,
			Inodes:       s.InodesScanned,
			Frames:       s.Frames,
			Bytes:        s.Bytes,
			Redials:      s.DialRetries,
			StallSeconds: s.StallSeconds,
		})
	}
	sum := SkewSummary{
		Straggler:      m.Skew.Straggler,
		Fastest:        m.Skew.Fastest,
		SlowestSeconds: m.Skew.SlowestSeconds,
		FastestSeconds: m.Skew.FastestSeconds,
		MeanSeconds:    m.Skew.MeanSeconds,
		StragglerRatio: m.Skew.StragglerRatio,
	}
	return rows, sum, nil
}

// SkewTable renders the per-server rows with a text bar scaled to the
// slowest scan span, plus the straggler attribution in the notes.
func SkewTable(rows []SkewRow, sum SkewSummary) *Table {
	t := &Table{
		Title: "Per-server scan skew over TCP (wire-shipped telemetry, 1 MDT + 8 OSTs)",
		Columns: []string{
			"server", "scan", "scan(s)", "inodes", "frames", "MiB", "redials", "stall(s)",
		},
	}
	for _, r := range rows {
		if r.Missing {
			t.Rows = append(t.Rows, []string{r.Server, "(missing)", "-", "-", "-", "-", "-", "-"})
			continue
		}
		cells := 0
		if sum.SlowestSeconds > 0 {
			cells = int(r.ScanSeconds / sum.SlowestSeconds * skewBarWidth)
		}
		if cells < 1 {
			cells = 1
		}
		bar := strings.Repeat("#", cells) + strings.Repeat(".", skewBarWidth-cells)
		t.Rows = append(t.Rows, []string{
			r.Server,
			bar,
			fmt.Sprintf("%.3f", r.ScanSeconds),
			fmt.Sprintf("%d", r.Inodes),
			fmt.Sprintf("%d", r.Frames),
			mib(r.Bytes),
			fmt.Sprintf("%d", r.Redials),
			fmt.Sprintf("%.3f", r.StallSeconds),
		})
	}
	if sum.Straggler != "" {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"straggler: %s at %.3fs (%.2fx the %.3fs mean); fastest: %s at %.3fs",
			sum.Straggler, sum.SlowestSeconds, sum.StragglerRatio,
			sum.MeanSeconds, sum.Fastest, sum.FastestSeconds))
	}
	t.Notes = append(t.Notes,
		"each row is that server's own wire trailer: scan-span duration, frames/bytes it shipped, redials, frame-write stall time",
		"the scan stage's wall clock is the slowest row; the ratio measures how much parallel speedup the skew costs")
	return t
}
