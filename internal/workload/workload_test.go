package workload

import (
	"math/rand"
	"testing"

	"faultyrank/internal/checker"
	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

func newCluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSampleFileSizeDistribution checks the published quantiles the
// generator targets: ~86% under 1 MiB, ~95% under 2 MiB.
func TestSampleFileSizeDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n = 100000
	var under1M, under2M int
	for i := 0; i < n; i++ {
		s := SampleFileSize(r)
		if s <= 0 {
			t.Fatalf("non-positive size %d", s)
		}
		if s < 1<<20 {
			under1M++
		}
		if s < 2<<20 {
			under2M++
		}
	}
	f1 := float64(under1M) / n
	f2 := float64(under2M) / n
	if f1 < 0.82 || f1 > 0.90 {
		t.Errorf("P(<1MiB) = %.3f, want ~0.86", f1)
	}
	if f2 < 0.92 || f2 > 0.975 {
		t.Errorf("P(<2MiB) = %.3f, want ~0.95", f2)
	}
}

func TestPopulateBuildsConsistentTree(t *testing.T) {
	c := newCluster(t)
	st, err := Populate(c, DefaultTreeSpec(300, 7))
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 300 {
		t.Fatalf("files = %d", st.Files)
	}
	if st.Dirs < 5 {
		t.Errorf("dirs = %d — tree did not branch", st.Dirs)
	}
	if st.Objects < st.Files {
		t.Errorf("objects = %d < files", st.Objects)
	}
	// A populated cluster must be fully consistent.
	res, err := checker.RunCluster(c, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UnpairedEdges != 0 || len(res.Findings) != 0 {
		t.Fatalf("populate produced an inconsistent cluster: %d unpaired, %d findings",
			res.Stats.UnpairedEdges, len(res.Findings))
	}
}

func TestPopulateDeterministic(t *testing.T) {
	a, b := newCluster(t), newCluster(t)
	sa, err := Populate(a, DefaultTreeSpec(150, 3))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Populate(b, DefaultTreeSpec(150, 3))
	if err != nil {
		t.Fatal(err)
	}
	if *sa != *sb {
		t.Fatalf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	if a.TotalInodes() != b.TotalInodes() {
		t.Error("same seed, different inode counts")
	}
}

func TestPopulateValidation(t *testing.T) {
	c := newCluster(t)
	if _, err := Populate(c, TreeSpec{Files: -1}); err == nil {
		t.Error("negative file count accepted")
	}
	st, err := Populate(c, TreeSpec{Files: 0, Seed: 1})
	if err != nil || st.Files != 0 {
		t.Errorf("zero files: %+v %v", st, err)
	}
}

func TestAgeReachesTargetAndStaysConsistent(t *testing.T) {
	c := newCluster(t)
	target := int64(600)
	alive, err := Age(c, AgeSpec{TargetMDTInodes: target, ChurnFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.MDTInodes() < target {
		t.Fatalf("mdt inodes = %d < target %d", c.MDTInodes(), target)
	}
	if len(alive) == 0 {
		t.Fatal("no files alive")
	}
	// Churned clusters must still be consistent.
	res, err := checker.RunCluster(c, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UnpairedEdges != 0 || len(res.Findings) != 0 {
		t.Fatalf("aging broke consistency: %d unpaired, %d findings",
			res.Stats.UnpairedEdges, len(res.Findings))
	}
	// ...and structurally sound at the substrate level.
	for label, img := range c.Images() {
		if errs := img.Validate(); len(errs) != 0 {
			t.Fatalf("%s: image invalid after aging: %v", label, errs)
		}
	}
	// Alive paths actually resolve.
	for _, p := range alive[:10] {
		if _, err := c.Stat(p); err != nil {
			t.Errorf("alive path %s: %v", p, err)
		}
	}
}

func TestAgeValidation(t *testing.T) {
	c := newCluster(t)
	if _, err := Age(c, AgeSpec{TargetMDTInodes: 10, ChurnFraction: 1.5}); err == nil {
		t.Error("bad churn accepted")
	}
}

func edgesInRange(t *testing.T, edges []graph.Edge, n int) {
	t.Helper()
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			t.Fatalf("edge %v out of range %d", e, n)
		}
	}
}

func TestAmazonLikeShape(t *testing.T) {
	n := 5000
	edges := AmazonLike(n, 12, 11)
	if len(edges) < n*6 {
		t.Fatalf("too few edges: %d", len(edges))
	}
	edgesInRange(t, edges, n)
	// Heavy reciprocity: a majority of edges should be paired.
	b := graph.NewBidirectedUntyped(n, edges, 0)
	st := b.Stats(0)
	if float64(st.PairedEdges)/float64(st.Edges) < 0.5 {
		t.Errorf("paired fraction %.2f too low for a co-purchase graph",
			float64(st.PairedEdges)/float64(st.Edges))
	}
}

func TestRoadNetLikeShape(t *testing.T) {
	w, h := 60, 50
	edges := RoadNetLike(w, h, 13)
	edgesInRange(t, edges, w*h)
	b := graph.NewBidirectedUntyped(w*h, edges, 0)
	st := b.Stats(0)
	// Road networks are symmetric and very low degree.
	if st.UnpairedEdges != 0 {
		t.Errorf("road net has %d unpaired edges", st.UnpairedEdges)
	}
	avgDeg := float64(st.Edges) / float64(w*h)
	if avgDeg < 1.5 || avgDeg > 4.5 {
		t.Errorf("avg degree %.2f outside road-net profile", avgDeg)
	}
}
