// Package workload generates the evaluation workloads of the paper:
//
//   - a LANL-USRC-style file system population (§V-A): a realistic
//     directory tree with the published file-size distribution (86% of
//     files under 1 MiB, 95% under 2 MiB), laid out with the paper's
//     64 KiB stripe trick so layout metadata is as rich as on the 2 PB
//     original;
//   - an aging driver for Table VI (create/delete churn toward a target
//     inode count);
//   - synthetic stand-ins for the SNAP graphs of Table III (an
//     Amazon-like co-purchase graph and a Road-Net-like lattice).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"faultyrank/internal/graph"
	"faultyrank/internal/lustre"
)

// TreeSpec configures a namespace population run.
type TreeSpec struct {
	// Files is the number of regular files to create.
	Files int
	// MeanDirFanout is the average number of entries per directory
	// before a new subdirectory is preferred (LANL walks average a few
	// dozen entries per directory).
	MeanDirFanout int
	// MaxDepth bounds the directory depth.
	MaxDepth int
	// MaxDirEntries caps how many entries a single directory may ever
	// accumulate across revisits (0 = 1200, safe for the compact image
	// geometry's dirent capacity).
	MaxDirEntries int
	// Seed makes population deterministic.
	Seed int64
}

// DefaultTreeSpec mirrors the shape of the LANL archive walk at a given
// file count.
func DefaultTreeSpec(files int, seed int64) TreeSpec {
	return TreeSpec{Files: files, MeanDirFanout: 24, MaxDepth: 12, Seed: seed}
}

// PopulateStats reports what Populate created.
type PopulateStats struct {
	Dirs, Files, Objects int64
	Bytes                int64
}

// SampleFileSize draws from the published PFS file-size distribution
// (paper §V-A, citing Carns et al.): 40% of files fit one 64 KiB
// stripe, 86% are under 1 MiB, 95% under 2 MiB, the tail reaches tens
// of MiB. Sizes are log-uniform within each bucket. Like the paper's
// testbed trick, callers may cap sizes at 8 stripes — the layout
// metadata is identical either way.
func SampleFileSize(r *rand.Rand) int64 {
	u := r.Float64()
	switch {
	case u < 0.40: // <= 64 KiB
		return logUniform(r, 1, 64<<10)
	case u < 0.86: // 64 KiB .. 1 MiB
		return logUniform(r, 64<<10, 1<<20)
	case u < 0.95: // 1 .. 2 MiB
		return logUniform(r, 1<<20, 2<<20)
	default: // 2 .. 32 MiB
		return logUniform(r, 2<<20, 32<<20)
	}
}

func logUniform(r *rand.Rand, lo, hi int64) int64 {
	if lo >= hi {
		return lo
	}
	ratio := float64(hi) / float64(lo)
	v := float64(lo) * pow(ratio, r.Float64())
	if v < float64(lo) {
		v = float64(lo)
	}
	if v > float64(hi) {
		v = float64(hi)
	}
	return int64(v)
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// Populate fills the cluster with a LANL-style tree. Directory growth
// follows the walk shape: files land in a working directory; once its
// fanout target is hit the generator either descends into a fresh
// subdirectory or pops toward the root, yielding the mix of deep chains
// and broad directories archive walks show.
func Populate(c *lustre.Cluster, spec TreeSpec) (*PopulateStats, error) {
	if spec.Files < 0 {
		return nil, fmt.Errorf("workload: negative file count")
	}
	if spec.MeanDirFanout <= 0 {
		spec.MeanDirFanout = 24
	}
	if spec.MaxDepth <= 0 {
		spec.MaxDepth = 12
	}
	r := rand.New(rand.NewSource(spec.Seed))
	st := &PopulateStats{}

	if spec.MaxDirEntries <= 0 {
		spec.MaxDirEntries = 1200
	}
	type dirState struct {
		path    string
		depth   int
		left    int // entries before this visit considers the dir "full"
		entries int // lifetime entry count, capped by MaxDirEntries
	}
	fanout := func() int { return 1 + r.Intn(2*spec.MeanDirFanout) }
	// budgetFor clamps a visit's quota to the directory's lifetime cap.
	budgetFor := func(d *dirState) int {
		room := spec.MaxDirEntries - d.entries
		f := fanout()
		if f > room {
			f = room
		}
		return f
	}
	stack := []dirState{{path: "", depth: 0}}
	stack[0].left = budgetFor(&stack[0])
	dirSeq, fileSeq := 0, 0
	lastFile := ""

	for created := 0; created < spec.Files; {
		cur := &stack[len(stack)-1]
		if cur.left <= 0 {
			// Directory full for this visit: descend (biased), pop
			// toward the root, or — when the root itself is at its
			// lifetime cap — force a descent so progress continues.
			mustDescend := len(stack) == 1 && cur.entries >= spec.MaxDirEntries
			if cur.depth < spec.MaxDepth && (mustDescend || r.Float64() < 0.7) {
				dirSeq++
				sub := dirState{
					path:  fmt.Sprintf("%s/d%05d", cur.path, dirSeq),
					depth: cur.depth + 1,
				}
				if err := c.MkdirAll(sub.path); err != nil {
					return nil, err
				}
				cur.entries++
				st.Dirs++
				sub.left = budgetFor(&sub)
				stack = append(stack, sub)
			} else if len(stack) > 1 {
				pop := 1 + r.Intn(len(stack)-1)
				stack = stack[:len(stack)-pop]
				// Give the resurfaced directory more room (within cap).
				top := &stack[len(stack)-1]
				top.left = budgetFor(top)
			} else {
				cur.left = budgetFor(cur)
			}
			continue
		}
		fileSeq++
		name := fmt.Sprintf("%s/f%07d", cur.path, fileSeq)
		// Archive walks contain a few percent of symlinks; sprinkle
		// them in once there is something to point at.
		if lastFile != "" && r.Float64() < 0.03 {
			if err := c.Symlink(lastFile, name); err != nil {
				return nil, err
			}
			st.Files++
			cur.left--
			cur.entries++
			created++
			continue
		}
		size := SampleFileSize(r)
		if _, err := c.Create(name, size); err != nil {
			return nil, err
		}
		lastFile = name
		st.Files++
		st.Bytes += size
		cur.left--
		cur.entries++
		created++
	}
	_, _, objs := c.Counts()
	st.Objects = objs
	return st, nil
}

// AgeSpec drives create/delete churn toward a target MDT inode count
// (the x-axis of Table VI).
type AgeSpec struct {
	// TargetMDTInodes stops aging once the MDT holds this many inodes.
	TargetMDTInodes int64
	// ChurnFraction deletes this fraction of files between growth
	// rounds, fragmenting inode allocation like a production system.
	ChurnFraction float64
	Seed          int64
}

// Age grows (and churns) the cluster until the MDT inode count reaches
// the target. It returns the paths of files alive at the end.
func Age(c *lustre.Cluster, spec AgeSpec) ([]string, error) {
	if spec.ChurnFraction < 0 || spec.ChurnFraction >= 1 {
		return nil, fmt.Errorf("workload: bad churn fraction %f", spec.ChurnFraction)
	}
	r := rand.New(rand.NewSource(spec.Seed))
	var alive []string
	round := 0
	for c.MDTInodes() < spec.TargetMDTInodes {
		round++
		// Churn first: delete, rename and truncate files, fragmenting
		// inode allocation and reshaping layouts like a production
		// system. Churn is proportional to this round's planned growth,
		// NOT to the whole population — population-proportional churn
		// reaches equilibrium with the capped batch size at large
		// targets and the loop never terminates.
		planned := int(spec.TargetMDTInodes - c.MDTInodes())
		if planned > 1500 {
			planned = 1500
		}
		if round > 1 && spec.ChurnFraction > 0 && len(alive) > 16 {
			del := int(float64(planned) * spec.ChurnFraction)
			for i := 0; i < del; i++ {
				idx := r.Intn(len(alive))
				if err := c.Unlink(alive[idx]); err == nil {
					alive[idx] = alive[len(alive)-1]
					alive = alive[:len(alive)-1]
				}
			}
			// Lighter rename/truncate churn: a quarter of the delete rate.
			mv := del / 4
			for i := 0; i < mv && len(alive) > 0; i++ {
				idx := r.Intn(len(alive))
				np := fmt.Sprintf("%s.r%d", alive[idx], round)
				if err := c.Rename(alive[idx], np); err == nil {
					alive[idx] = np
				}
			}
			for i := 0; i < mv && len(alive) > 0; i++ {
				idx := r.Intn(len(alive))
				_ = c.Truncate(alive[idx], SampleFileSize(r))
			}
		}
		// Round directories are namespaced by target so repeated Age
		// calls on one cluster (Table VI's growing sweep) never collide.
		dir := fmt.Sprintf("/age/t%d-r%04d", spec.TargetMDTInodes, round)
		if err := c.MkdirAll(dir); err != nil {
			return nil, err
		}
		// Cap the per-directory file count well below the dirent-block
		// capacity of even the compact geometry (8 direct + 1 indirect
		// block of entries).
		gap := spec.TargetMDTInodes - c.MDTInodes()
		batch := int(gap)
		if batch > 1500 {
			batch = 1500
		}
		if batch < 1 {
			batch = 1
		}
		for i := 0; i < batch; i++ {
			p := fmt.Sprintf("%s/f%06d", dir, i)
			if _, err := c.Create(p, SampleFileSize(r)); err != nil {
				return nil, err
			}
			alive = append(alive, p)
		}
	}
	return alive, nil
}

// AmazonLike builds a preferential-attachment co-purchase-style graph:
// each vertex links to `degree` earlier vertices, biased toward popular
// ones, and links are reciprocated with probability pRecip (Amazon
// co-purchase edges are heavily reciprocal). With n=403_393 and
// degree=12 the size matches Table III's Amazon graph.
func AmazonLike(n, degree int, seed int64) []graph.Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*degree)
	const pRecip = 0.55
	for v := 1; v < n; v++ {
		d := 1 + r.Intn(2*degree-1)
		for k := 0; k < d; k++ {
			// Preferential attachment: pick the endpoint of a random
			// earlier edge half the time.
			var u uint32
			if len(edges) > 0 && r.Float64() < 0.5 {
				u = edges[r.Intn(len(edges))].Dst
			} else {
				u = uint32(r.Intn(v))
			}
			if u == uint32(v) {
				continue
			}
			edges = append(edges, graph.Edge{Src: uint32(v), Dst: u})
			if r.Float64() < pRecip {
				edges = append(edges, graph.Edge{Src: u, Dst: uint32(v)})
			}
		}
	}
	return edges
}

// RoadNetLike builds a road-network-style graph: a W×H grid with
// bidirectional edges and a sprinkle of removed cells, matching the
// near-planar, low-degree profile of SNAP's roadNet graphs. The vertex
// count is W*H.
func RoadNetLike(w, h int, seed int64) []graph.Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, 4*w*h)
	id := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if r.Float64() < 0.03 {
				continue // missing intersection
			}
			if x+1 < w && r.Float64() < 0.95 {
				edges = append(edges,
					graph.Edge{Src: id(x, y), Dst: id(x+1, y)},
					graph.Edge{Src: id(x+1, y), Dst: id(x, y)})
			}
			if y+1 < h && r.Float64() < 0.95 {
				edges = append(edges,
					graph.Edge{Src: id(x, y), Dst: id(x, y+1)},
					graph.Edge{Src: id(x, y+1), Dst: id(x, y)})
			}
		}
	}
	return edges
}
