package edgelist

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"faultyrank/internal/graph"
)

func randomEdges(r *rand.Rand, n, m int) []graph.Edge {
	out := make([]graph.Edge, m)
	for i := range out {
		out[i] = graph.Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	return out
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := randomEdges(r, 1+r.Intn(100), r.Intn(500))
		var buf bytes.Buffer
		if err := WriteText(&buf, edges); err != nil {
			return false
		}
		got, _, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if len(edges) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(edges, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := randomEdges(r, 1+r.Intn(100), r.Intn(500))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			return false
		}
		got, _, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(edges) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(edges, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTextSNAPStyle(t *testing.T) {
	in := `# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 4 Edges: 3
% another comment style
0	1
1 2

3 0
`
	edges, n, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0}}
	if !reflect.DeepEqual(edges, want) || n != 4 {
		t.Fatalf("got %v n=%d", edges, n)
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, _, err := ReadText(strings.NewReader("abc def\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := ReadText(strings.NewReader("1\n")); err == nil {
		t.Error("missing dst accepted")
	}
	if _, _, err := ReadText(strings.NewReader("99999999999 1\n")); err == nil {
		t.Error("overflow accepted")
	}
	edges, n, err := ReadText(strings.NewReader("# only comments\n"))
	if err != nil || len(edges) != 0 || n != 0 {
		t.Errorf("comment-only: %v %d %v", edges, n, err)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := ReadBinary(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	WriteBinary(&buf, []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}})
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated accepted")
	}
}

// TestReadBinaryLyingHeader: a header claiming billions of edges over a
// near-empty body must fail with the truncation error after at most one
// allocation batch (8 MiB), not allocate the claimed tens of GiB up
// front — the old make([]Edge, count) would dwarf the test's memory.
func TestReadBinaryLyingHeader(t *testing.T) {
	for _, claim := range []uint64{1 << 30, 1 << 33} {
		var buf bytes.Buffer
		buf.Write(BinaryMagic[:])
		var hdr [8]byte
		le := [8]byte{byte(claim), byte(claim >> 8), byte(claim >> 16), byte(claim >> 24),
			byte(claim >> 32), byte(claim >> 40), byte(claim >> 48), byte(claim >> 56)}
		hdr = le
		buf.Write(hdr[:])
		buf.Write(make([]byte, 8*3)) // only three real records
		_, _, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err == nil {
			t.Fatalf("claim %d: lying header accepted", claim)
		}
		if !strings.Contains(err.Error(), "truncated at edge 3") {
			t.Fatalf("claim %d: err = %v, want truncation at edge 3", claim, err)
		}
	}
	// Beyond the sanity bound the reader refuses before reading records.
	var buf bytes.Buffer
	buf.Write(BinaryMagic[:])
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0xFF})
	if _, _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("implausible count accepted")
	}
}
