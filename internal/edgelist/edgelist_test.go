package edgelist

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"faultyrank/internal/graph"
)

func randomEdges(r *rand.Rand, n, m int) []graph.Edge {
	out := make([]graph.Edge, m)
	for i := range out {
		out[i] = graph.Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	return out
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := randomEdges(r, 1+r.Intn(100), r.Intn(500))
		var buf bytes.Buffer
		if err := WriteText(&buf, edges); err != nil {
			return false
		}
		got, _, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if len(edges) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(edges, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := randomEdges(r, 1+r.Intn(100), r.Intn(500))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			return false
		}
		got, _, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(edges) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(edges, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTextSNAPStyle(t *testing.T) {
	in := `# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 4 Edges: 3
% another comment style
0	1
1 2

3 0
`
	edges, n, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0}}
	if !reflect.DeepEqual(edges, want) || n != 4 {
		t.Fatalf("got %v n=%d", edges, n)
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, _, err := ReadText(strings.NewReader("abc def\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := ReadText(strings.NewReader("1\n")); err == nil {
		t.Error("missing dst accepted")
	}
	if _, _, err := ReadText(strings.NewReader("99999999999 1\n")); err == nil {
		t.Error("overflow accepted")
	}
	edges, n, err := ReadText(strings.NewReader("# only comments\n"))
	if err != nil || len(edges) != 0 || n != 0 {
		t.Errorf("comment-only: %v %d %v", edges, n, err)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := ReadBinary(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	WriteBinary(&buf, []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}})
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated accepted")
	}
}
