// Package edgelist reads and writes graph edge lists in the two formats
// the benchmark tooling uses: the whitespace text format of SNAP
// datasets ("src dst" per line, '#' comments) and a compact binary
// format (8 bytes per edge) for fast reloads. The FaultyRank prototype
// measures "graph building" time starting from an edge-list file
// (paper §V-C1); these readers are that input path.
package edgelist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"faultyrank/internal/graph"
)

// BinaryMagic heads the binary format ("FREL1\n" padded into 8 bytes).
var BinaryMagic = [8]byte{'F', 'R', 'E', 'L', '1', '\n', 0, 0}

// WriteText writes edges as "src dst" lines.
func WriteText(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses "src dst" lines, skipping blank lines and '#'/'%'
// comments (both appear in SNAP dumps). It returns the edges and the
// smallest vertex count that contains them.
func ReadText(r io.Reader) ([]graph.Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	maxV := uint32(0)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		// skip leading spaces
		i := 0
		for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
			i++
		}
		if i == len(b) || b[i] == '#' || b[i] == '%' {
			continue
		}
		src, n, err := parseUint(b[i:])
		if err != nil {
			return nil, 0, fmt.Errorf("edgelist: line %d: %v", line, err)
		}
		i += n
		for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
			i++
		}
		dst, _, err := parseUint(b[i:])
		if err != nil {
			return nil, 0, fmt.Errorf("edgelist: line %d: %v", line, err)
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
		if src > maxV {
			maxV = src
		}
		if dst > maxV {
			maxV = dst
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	n := 0
	if len(edges) > 0 {
		n = int(maxV) + 1
	}
	return edges, n, nil
}

func parseUint(b []byte) (uint32, int, error) {
	i := 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, 0, fmt.Errorf("expected integer, got %q", string(b))
	}
	v, err := strconv.ParseUint(string(b[:i]), 10, 32)
	if err != nil {
		return 0, 0, err
	}
	return uint32(v), i, nil
}

// WriteBinary writes the compact binary format:
//
//	8-byte magic | u64 edge count | edges × { u32 src, u32 dst }
func WriteBinary(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(BinaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) ([]graph.Edge, int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, 0, err
	}
	if magic != BinaryMagic {
		return nil, 0, fmt.Errorf("edgelist: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, err
	}
	m := binary.LittleEndian.Uint64(hdr[:])
	const maxEdges = 1 << 33
	if m > maxEdges {
		return nil, 0, fmt.Errorf("edgelist: implausible edge count %d", m)
	}
	// The count comes from an untrusted header: grow in bounded batches
	// as records actually arrive instead of allocating all m up front,
	// so a lying header in a short file costs at most one batch before
	// the truncation error.
	const batch = 1 << 20
	var edges []graph.Edge
	maxV := uint32(0)
	var rec [8]byte
	for i := uint64(0); i < m; i++ {
		if i == uint64(len(edges)) {
			grow := m - i
			if grow > batch {
				grow = batch
			}
			edges = append(edges, make([]graph.Edge, grow)...)
		}
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, 0, fmt.Errorf("edgelist: truncated at edge %d: %v", i, err)
		}
		e := graph.Edge{
			Src: binary.LittleEndian.Uint32(rec[0:]),
			Dst: binary.LittleEndian.Uint32(rec[4:]),
		}
		edges[i] = e
		if e.Src > maxV {
			maxV = e.Src
		}
		if e.Dst > maxV {
			maxV = e.Dst
		}
	}
	n := 0
	if len(edges) > 0 {
		n = int(maxV) + 1
	}
	return edges, n, nil
}
