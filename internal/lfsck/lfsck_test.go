package lfsck

import (
	"fmt"
	"testing"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

func testCluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		dir := fmt.Sprintf("/proj%d", d)
		if err := c.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if _, err := c.Create(fmt.Sprintf("%s/file%d", dir, f), 3*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

const target = "/proj1/file2"

func runLFSCK(t testing.TB, c *lustre.Cluster, opt Options) *Result {
	t.Helper()
	res, err := Run(checker.ClusterImages(c), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCleanClusterNoActions(t *testing.T) {
	c := testCluster(t)
	res := runLFSCK(t, c, Options{})
	if len(res.Actions) != 0 {
		t.Fatalf("actions on clean cluster: %+v", res.Actions)
	}
	if res.Stats.InodesChecked == 0 || res.Stats.RPCs == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
	if res.Duration <= 0 {
		t.Error("no duration recorded")
	}
}

// TestTable1Behaviours verifies the LFSCK behaviour matrix of paper
// Table I against the injected scenarios: LFSCK repairs the cases where
// its fixed "MDS wins" rule happens to match the root cause, and parks
// or mangles the rest.
func TestTable1Behaviours(t *testing.T) {
	// Dangling reference, root cause "b's id is wrong": LFSCK recreates
	// an empty stub under the referenced FID and parks the real object
	// — it never repairs b's id.
	t.Run("dangling-object-id", func(t *testing.T) {
		c := testCluster(t)
		inj, err := inject.Inject(c, inject.DanglingObjectID, target)
		if err != nil {
			t.Fatal(err)
		}
		res := runLFSCK(t, c, Options{})
		if !res.HasAction(LayoutRecreateObject, inj.VictimFID) {
			t.Errorf("no stub recreation: %+v", res.Actions)
		}
		if !res.HasAction(LayoutLostFoundObject, inj.NewFID) {
			t.Errorf("real object not parked: %+v", res.Actions)
		}
	})

	// Dangling reference, root cause "a's property wrong" (wiped dir):
	// LFSCK cannot identify the directory as faulty; the children are
	// unreferenced and go to lost+found.
	t.Run("dangling-dirent", func(t *testing.T) {
		c := testCluster(t)
		if _, err := inject.Inject(c, inject.DanglingDirent, target); err != nil {
			t.Fatal(err)
		}
		res := runLFSCK(t, c, Options{})
		parked := res.ActionsOfKind(NSLostFound)
		if len(parked) != 4 { // the four files of /proj1
			t.Errorf("parked %d namespace objects, want 4: %+v", len(parked), res.Actions)
		}
	})

	// Unreferenced object: LFSCK parks it; it never considers that the
	// owner's LOVEA lost the entry.
	t.Run("unreferenced-object", func(t *testing.T) {
		c := testCluster(t)
		inj, err := inject.Inject(c, inject.UnrefLOVEADropped, target)
		if err != nil {
			t.Fatal(err)
		}
		res := runLFSCK(t, c, Options{})
		if !res.HasAction(LayoutLostFoundObject, inj.PeerFID) {
			t.Errorf("dropped object not parked: %+v", res.Actions)
		}
	})

	// Mismatch, root cause "b's property wrong": the one case the MDS-
	// wins rule repairs correctly.
	t.Run("mismatch-filterfid", func(t *testing.T) {
		c := testCluster(t)
		inj, err := inject.Inject(c, inject.MismatchFilterFID, target)
		if err != nil {
			t.Fatal(err)
		}
		res := runLFSCK(t, c, Options{})
		if !res.HasAction(LayoutFixFilterFID, inj.VictimFID) {
			t.Fatalf("filter-fid not fixed: %+v", res.Actions)
		}
		// Verify the repair is actually correct here.
		chk, err := checker.Run(checker.ClusterImages(c), checker.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if chk.Stats.UnpairedEdges != 0 {
			t.Errorf("mismatch repair left %d unpaired edges", chk.Stats.UnpairedEdges)
		}
	})

	// Mismatch, root cause "a's id wrong": LFSCK trusts the local inode,
	// rewrites the dirent from the corrupted LMA, and then overwrites
	// every object's filter-fid — accepting the wrong identity instead
	// of repairing it.
	t.Run("mismatch-file-id", func(t *testing.T) {
		c := testCluster(t)
		inj, err := inject.Inject(c, inject.MismatchFileID, target)
		if err != nil {
			t.Fatal(err)
		}
		res := runLFSCK(t, c, Options{})
		if !res.HasAction(NSFixDirentFID, inj.VictimFID) {
			t.Errorf("dirent not rewritten from corrupted LMA: %+v", res.Actions)
		}
		fixed := res.ActionsOfKind(LayoutFixFilterFID)
		if len(fixed) != 3 { // all three stripes re-pointed at the wrong id
			t.Errorf("filter-fids overwritten = %d, want 3", len(fixed))
		}
	})

	// Stale objects after a lost file: parked one by one; the file is
	// never reconstructed.
	t.Run("stale-objects", func(t *testing.T) {
		c := testCluster(t)
		if _, err := inject.Inject(c, inject.UnrefStaleObject, target); err != nil {
			t.Fatal(err)
		}
		res := runLFSCK(t, c, Options{})
		parked := res.ActionsOfKind(LayoutLostFoundObject)
		if len(parked) != 3 {
			t.Errorf("parked %d objects, want 3: %+v", len(parked), res.Actions)
		}
	})
}

func TestDryRunDoesNotMutate(t *testing.T) {
	c := testCluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, target); err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), c.MDT.Img.Bytes()...)
	res := runLFSCK(t, c, Options{DryRun: true})
	if len(res.Actions) == 0 {
		t.Fatal("dry run found nothing")
	}
	after := c.MDT.Img.Bytes()
	if len(before) != len(after) {
		t.Fatal("image grew during dry run")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("image mutated at byte %d during dry run", i)
		}
	}
}

func TestNamespaceLinkEAFix(t *testing.T) {
	c := testCluster(t)
	// Corrupt a file's LinkEA (wrong parent): LFSCK rewrites it from
	// the parent's dirent — correct here, since the parent is right.
	ent, err := c.Stat(target)
	if err != nil {
		t.Fatal(err)
	}
	link, _ := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lustre.FID{Seq: 0xBAD, Oid: 9}, Name: "file2"}})
	if err := c.MDT.Img.SetXattr(ent.Ino, lustre.XattrLink, link); err != nil {
		t.Fatal(err)
	}
	res := runLFSCK(t, c, Options{})
	if !res.HasAction(NSFixLinkEA, ent.FID) {
		t.Fatalf("linkEA not fixed: %+v", res.Actions)
	}
	raw, _, _ := c.MDT.Img.GetXattr(ent.Ino, lustre.XattrLink)
	links, _ := lustre.DecodeLinkEA(raw)
	parent, _ := c.Stat("/proj1")
	if len(links) != 1 || links[0].Parent != parent.FID {
		t.Errorf("linkEA after repair: %+v", links)
	}
}

func TestLFSCKOverTCP(t *testing.T) {
	c := testCluster(t)
	inj, err := inject.Inject(c, inject.MismatchFilterFID, target)
	if err != nil {
		t.Fatal(err)
	}
	res := runLFSCK(t, c, Options{UseTCP: true})
	if !res.HasAction(LayoutFixFilterFID, inj.VictimFID) {
		t.Fatalf("tcp run missed the fault: %+v", res.Actions)
	}
	if res.Stats.RPCs == 0 {
		t.Error("no RPCs counted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("no images accepted")
	}
	img := ldiskfs.MustNew(ldiskfs.CompactGeometry())
	if _, err := Run([]*ldiskfs.Image{img}, Options{}); err == nil {
		t.Error("single image accepted")
	}
}

func TestActionKindStrings(t *testing.T) {
	for k := ActionKind(0); k < 8; k++ {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", k)
		}
	}
}
