package lfsck

import (
	"reflect"
	"sort"
	"testing"

	"faultyrank/internal/inject"
	"faultyrank/internal/lustre"
)

// sortedActions normalises an action log for comparison: details are
// dropped and injector-minted bogus FIDs (which come from a
// process-global counter, so they differ between the two clusters) are
// collapsed to a placeholder.
func sortedActions(res *Result) []Action {
	const bogusSeq = 0xFA017
	out := make([]Action, 0, len(res.Actions))
	for _, a := range res.Actions {
		a.Detail = ""
		if a.FID.Seq == bogusSeq {
			a.FID = lustre.FID{Seq: bogusSeq, Oid: 0xFFFF}
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].FID.Less(out[j].FID)
	})
	return out
}

// TestBatchedEquivalence: the batched-RPC variant must reach exactly the
// same verdicts as the per-object pipeline on every scenario — only the
// round-trip count changes.
func TestBatchedEquivalence(t *testing.T) {
	for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			base := testCluster(t)
			if _, err := inject.Inject(base, s, target); err != nil {
				t.Fatal(err)
			}
			batched := testCluster(t)
			if _, err := inject.Inject(batched, s, target); err != nil {
				t.Fatal(err)
			}
			resA := runLFSCK(t, base, Options{DryRun: true})
			resB := runLFSCK(t, batched, Options{DryRun: true, BatchSize: 64})
			a, b := sortedActions(resA), sortedActions(resB)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("verdicts diverge:\n per-object: %+v\n batched: %+v", a, b)
			}
		})
	}
}

// TestBatchedUsesFewerRPCs: over TCP, batching collapses the round-trip
// count by roughly the batch factor.
func TestBatchedUsesFewerRPCs(t *testing.T) {
	seq := testCluster(t)
	resSeq := runLFSCK(t, seq, Options{UseTCP: true, DryRun: true})
	bat := testCluster(t)
	resBat := runLFSCK(t, bat, Options{UseTCP: true, DryRun: true, BatchSize: 64})
	if resBat.Stats.RPCs*8 > resSeq.Stats.RPCs {
		t.Fatalf("batched RPCs %d not ≪ per-object %d", resBat.Stats.RPCs, resSeq.Stats.RPCs)
	}
	if resBat.Duration >= resSeq.Duration*2 {
		t.Errorf("batched run slower than per-object: %v vs %v", resBat.Duration, resSeq.Duration)
	}
}
