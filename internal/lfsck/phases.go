package lfsck

import (
	"errors"
	"fmt"
	"strings"

	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/wire"
)

// namespacePhase is LFSCK phase 1: a sequential sweep of the MDT
// namespace. For every directory entry the child's LinkEA is
// cross-checked; the parent's view always wins. Afterwards, namespace
// objects no directory references are parked in lost+found.
func (r *runner) namespacePhase() error {
	type inodeRec struct {
		ino ldiskfs.Ino
		typ ldiskfs.FileType
		fid lustre.FID
	}
	var inodes []inodeRec
	err := r.mdt.AllocatedInodes(func(ino ldiskfs.Ino, t ldiskfs.FileType) error {
		fid := lustre.FID{}
		if raw, ok, _ := r.mdt.GetXattr(ino, lustre.XattrLMA); ok {
			if f, err := lustre.DecodeLMA(raw); err == nil {
				fid = f
			}
		}
		inodes = append(inodes, inodeRec{ino: ino, typ: t, fid: fid})
		return nil
	})
	if err != nil {
		return err
	}

	referenced := map[lustre.FID]bool{lustre.RootFID: true}
	for _, rec := range inodes {
		r.res.Stats.InodesChecked++
		if rec.typ != ldiskfs.TypeDir {
			continue
		}
		ents, _ := r.mdt.Dirents(rec.ino)
		for _, de := range ents {
			childFID := lustre.FIDFromBytes(de.Tag[:])
			childIno := de.Ino
			// ldiskfs resolves names by local inode; the FID in the
			// entry is auxiliary. A dead inode makes the entry dangling
			// (removed); a live inode whose LMA disagrees gets the entry
			// rewritten from the LMA — the local inode is trusted, so a
			// corrupted identity is accepted as the new truth (Table I:
			// LFSCK cannot identify "a's id is wrong").
			if !r.mdt.InodeAllocated(childIno) {
				r.act(NSDropDirent, childFID, "dangling entry %q in %v", de.Name, rec.fid)
				if !r.opt.DryRun {
					_ = r.mdt.RemoveDirent(rec.ino, de.Name)
				}
				continue
			}
			if raw, ok, _ := r.mdt.GetXattr(childIno, lustre.XattrLMA); ok {
				if lma, err := lustre.DecodeLMA(raw); err == nil && !lma.IsZero() && lma != childFID {
					r.act(NSFixDirentFID, childFID,
						"entry %q FID rewritten %v -> %v from child LMA", de.Name, childFID, lma)
					childFID = lma
					if !r.opt.DryRun {
						_ = r.mdt.RemoveDirent(rec.ino, de.Name)
						_ = r.mdt.AddDirent(rec.ino, ldiskfs.Dirent{
							Ino: childIno, Type: de.Type, Tag: lma.Bytes(), Name: de.Name,
						})
					}
				}
			}
			referenced[childFID] = true
			// Cross-check the child's LinkEA; the parent wins.
			ok := false
			if raw, has, _ := r.mdt.GetXattr(childIno, lustre.XattrLink); has {
				if links, err := lustre.DecodeLinkEA(raw); err == nil {
					for _, l := range links {
						if l.Parent == rec.fid && l.Name == de.Name {
							ok = true
							break
						}
					}
				}
			}
			if !ok && !rec.fid.IsZero() {
				r.act(NSFixLinkEA, childFID, "rewrote LinkEA of %q from parent %v", de.Name, rec.fid)
				if !r.opt.DryRun {
					link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: rec.fid, Name: de.Name}})
					if err == nil {
						_ = r.mdt.SetXattr(childIno, lustre.XattrLink, link)
					}
				}
			}
		}
	}

	// Unreferenced namespace objects go to lost+found — LFSCK does not
	// try to decide whether a parent lost its entries.
	for _, rec := range inodes {
		if rec.fid.IsZero() || referenced[rec.fid] || rec.fid.Seq == LostSeq {
			continue
		}
		if rec.typ != ldiskfs.TypeDir && rec.typ != ldiskfs.TypeFile && rec.typ != ldiskfs.TypeSymlink {
			continue
		}
		r.act(NSLostFound, rec.fid, "unreferenced %v moved to lost+found", rec.typ)
		if !r.opt.DryRun {
			if err := r.nsToLostFound(rec.ino, rec.fid, rec.typ); err != nil {
				return err
			}
		}
	}
	return nil
}

// layoutPhase is LFSCK phase 2: for every MDT file, every LOVEA stripe
// is verified against its OST with one StatFID round trip. The MDS view
// always wins: missing objects are recreated as empty stubs, and
// disagreeing filter-fids are overwritten.
func (r *runner) layoutPhase() error {
	type fileRec struct {
		ino ldiskfs.Ino
		fid lustre.FID
	}
	var files []fileRec
	err := r.mdt.AllocatedInodes(func(ino ldiskfs.Ino, t ldiskfs.FileType) error {
		if t != ldiskfs.TypeFile {
			return nil
		}
		if raw, ok, _ := r.mdt.GetXattr(ino, lustre.XattrLMA); ok {
			if f, err := lustre.DecodeLMA(raw); err == nil && !f.IsZero() {
				files = append(files, fileRec{ino: ino, fid: f})
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Batched mode: sweep the layouts once, prefetch every referenced
	// object in BatchSize round trips per OST, then evaluate against
	// the prefetched answers.
	var preOST []map[lustre.FID]wire.FIDInfo
	if r.opt.BatchSize > 1 {
		queries := make([][]lustre.FID, len(r.ostStat))
		for _, f := range files {
			raw, ok, _ := r.mdt.GetXattr(f.ino, lustre.XattrLOV)
			if !ok {
				continue
			}
			layout, err := lustre.DecodeLOVEA(raw)
			if err != nil {
				continue
			}
			for _, s := range layout.Stripes {
				if !s.ObjectFID.IsZero() && int(s.OSTIndex) < len(queries) {
					queries[s.OSTIndex] = append(queries[s.OSTIndex], s.ObjectFID)
				}
			}
		}
		preOST = make([]map[lustre.FID]wire.FIDInfo, len(r.ostStat))
		for i := range queries {
			m, err := r.resolveAll(r.ostBatch[i], queries[i])
			if err != nil {
				return err
			}
			preOST[i] = m
		}
	}

	statOST := func(ost int, fid lustre.FID) (wire.FIDInfo, error) {
		if preOST != nil {
			return preOST[ost][fid], nil
		}
		return r.ostStat[ost](fid)
	}

	for _, f := range files {
		r.res.Stats.InodesChecked++
		raw, ok, _ := r.mdt.GetXattr(f.ino, lustre.XattrLOV)
		if !ok {
			continue
		}
		layout, err := lustre.DecodeLOVEA(raw)
		if err != nil {
			continue // corrupt layout: phase 1 of real LFSCK would rebuild via OI scrub
		}
		for idx, s := range layout.Stripes {
			if s.ObjectFID.IsZero() {
				continue
			}
			if int(s.OSTIndex) >= len(r.ostStat) {
				continue
			}
			info, err := statOST(int(s.OSTIndex), s.ObjectFID)
			if err != nil {
				return err
			}
			if !info.Exists {
				// Dangling layout reference: the MDS wins, so a stub
				// object is recreated under the referenced FID. If the
				// real object is out there under a corrupted id, it is
				// stranded (root cause 1 of Table I is never considered).
				r.act(LayoutRecreateObject, s.ObjectFID,
					"recreated empty stub for stripe %d of %v on ost%d", idx, f.fid, s.OSTIndex)
				if !r.opt.DryRun {
					if err := r.recreateStub(int(s.OSTIndex), s.ObjectFID, f.fid, uint32(idx)); err != nil {
						return err
					}
				}
				continue
			}
			// Mismatch check: the object's filter-fid must acknowledge
			// this file and stripe index; otherwise it is overwritten.
			match := false
			if ffRaw, has := info.Xattrs[lustre.XattrFilterFID]; has {
				if ff, err := lustre.DecodeFilterFID(ffRaw); err == nil {
					match = ff.ParentFID == f.fid && int(ff.StripeIndex) == idx
				}
			}
			if !match {
				r.act(LayoutFixFilterFID, s.ObjectFID,
					"overwrote filter-fid of %v from MDS (%v stripe %d)", s.ObjectFID, f.fid, idx)
				if !r.opt.DryRun {
					if err := r.overwriteFilterFID(int(s.OSTIndex), s.ObjectFID, f.fid, uint32(idx)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// orphanPhase is LFSCK phase 3: every OST object checks back with the
// MDT (one round trip per object). Objects whose owner does not exist
// or does not reference them are parked in lost+found.
func (r *runner) orphanPhase() error {
	for ostIdx, img := range r.osts {
		type objRec struct {
			ino ldiskfs.Ino
			fid lustre.FID
		}
		var objs []objRec
		err := img.AllocatedInodes(func(ino ldiskfs.Ino, t ldiskfs.FileType) error {
			if t != ldiskfs.TypeObject {
				return nil
			}
			if raw, ok, _ := img.GetXattr(ino, lustre.XattrLMA); ok {
				if f, err := lustre.DecodeLMA(raw); err == nil && !f.IsZero() {
					objs = append(objs, objRec{ino: ino, fid: f})
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		// Batched mode: prefetch every object's owner from the MDT in
		// BatchSize round trips.
		var preMDT map[lustre.FID]wire.FIDInfo
		if r.opt.BatchSize > 1 {
			var owners []lustre.FID
			for _, o := range objs {
				if raw, ok, _ := img.GetXattr(o.ino, lustre.XattrFilterFID); ok {
					if ff, err := lustre.DecodeFilterFID(raw); err == nil && !ff.ParentFID.IsZero() {
						owners = append(owners, ff.ParentFID)
					}
				}
			}
			m, err := r.resolveAll(r.mdtBatch, owners)
			if err != nil {
				return err
			}
			preMDT = m
		}
		statMDT := func(fid lustre.FID) (wire.FIDInfo, error) {
			if preMDT != nil {
				return preMDT[fid], nil
			}
			return r.mdtStat(fid)
		}
		for _, o := range objs {
			r.res.Stats.InodesChecked++
			var owner lustre.FID
			var stripe uint32
			if raw, ok, _ := img.GetXattr(o.ino, lustre.XattrFilterFID); ok {
				if ff, err := lustre.DecodeFilterFID(raw); err == nil {
					owner, stripe = ff.ParentFID, ff.StripeIndex
				}
			}
			claimed := false
			if !owner.IsZero() {
				info, err := statMDT(owner)
				if err != nil {
					return err
				}
				if info.Exists {
					if lovRaw, has := info.Xattrs[lustre.XattrLOV]; has {
						if layout, err := lustre.DecodeLOVEA(lovRaw); err == nil &&
							int(stripe) < len(layout.Stripes) {
							claimed = layout.Stripes[stripe].ObjectFID == o.fid
						}
					}
				}
			}
			if !claimed {
				r.act(LayoutLostFoundObject, o.fid,
					"object %v on ost%d unclaimed; parked in lost+found", o.fid, ostIdx)
				if !r.opt.DryRun {
					if err := r.objectToLostFound(ostIdx, img, o.ino, o.fid); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// --- repair helpers ---------------------------------------------------------

// lostFound returns (creating on demand) the MDT /lost+found directory.
func (r *runner) lostFound() (ldiskfs.Ino, lustre.FID, error) {
	if r.res.lostFoundIno != 0 {
		return r.res.lostFoundIno, r.res.lostFoundFID, nil
	}
	rootIno, ok := r.mdtIndex[lustre.RootFID]
	if !ok {
		return 0, lustre.FID{}, errors.New("lfsck: no root on MDT")
	}
	if de, found, _ := r.mdt.LookupDirent(rootIno, "lost+found"); found {
		r.res.lostFoundIno = de.Ino
		r.res.lostFoundFID = lustre.FIDFromBytes(de.Tag[:])
		return de.Ino, r.res.lostFoundFID, nil
	}
	fid := r.allocFID()
	ino, err := r.mdt.AllocInode(ldiskfs.TypeDir)
	if err != nil {
		return 0, lustre.FID{}, err
	}
	if err := r.mdt.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(fid)); err != nil {
		return 0, lustre.FID{}, err
	}
	link, _ := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lustre.RootFID, Name: "lost+found"}})
	if err := r.mdt.SetXattr(ino, lustre.XattrLink, link); err != nil {
		return 0, lustre.FID{}, err
	}
	if err := r.mdt.AddDirent(rootIno, ldiskfs.Dirent{
		Ino: ino, Type: ldiskfs.TypeDir, Tag: fid.Bytes(), Name: "lost+found",
	}); err != nil {
		return 0, lustre.FID{}, err
	}
	r.res.lostFoundIno, r.res.lostFoundFID = ino, fid
	return ino, fid, nil
}

// nsToLostFound reattaches an unreferenced namespace object.
func (r *runner) nsToLostFound(ino ldiskfs.Ino, fid lustre.FID, typ ldiskfs.FileType) error {
	lfIno, lfFID, err := r.lostFound()
	if err != nil {
		return err
	}
	name := "obj-" + strings.Trim(fid.String(), "[]")
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lfFID, Name: name}})
	if err != nil {
		return err
	}
	if err := r.mdt.SetXattr(ino, lustre.XattrLink, link); err != nil {
		return err
	}
	err = r.mdt.AddDirent(lfIno, ldiskfs.Dirent{
		Ino: ino, Type: typ, Tag: fid.Bytes(), Name: name,
	})
	if errors.Is(err, ldiskfs.ErrExist) {
		return nil
	}
	return err
}

// recreateStub creates an empty object under the FID the MDS references.
func (r *runner) recreateStub(ost int, objFID, owner lustre.FID, stripe uint32) error {
	if ost >= len(r.osts) {
		return fmt.Errorf("lfsck: no ost%d", ost)
	}
	img := r.osts[ost]
	ino, err := img.AllocInode(ldiskfs.TypeObject)
	if err != nil {
		return err
	}
	if err := img.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(objFID)); err != nil {
		return err
	}
	ff := lustre.EncodeFilterFID(lustre.FilterFID{ParentFID: owner, StripeIndex: stripe})
	return img.SetXattr(ino, lustre.XattrFilterFID, ff)
}

// overwriteFilterFID rewrites an object's point-back from the MDS view.
func (r *runner) overwriteFilterFID(ost int, objFID, owner lustre.FID, stripe uint32) error {
	if ost >= len(r.osts) {
		return fmt.Errorf("lfsck: no ost%d", ost)
	}
	img := r.osts[ost]
	// Resolve the object locally (linear OI walk is acceptable: this
	// path runs once per repaired object, not per checked object).
	var target ldiskfs.Ino
	err := img.AllocatedInodes(func(ino ldiskfs.Ino, t ldiskfs.FileType) error {
		if target != 0 {
			return nil
		}
		if raw, ok, _ := img.GetXattr(ino, lustre.XattrLMA); ok {
			if f, err := lustre.DecodeLMA(raw); err == nil && f == objFID {
				target = ino
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if target == 0 {
		return fmt.Errorf("lfsck: object %v vanished", objFID)
	}
	ff := lustre.EncodeFilterFID(lustre.FilterFID{ParentFID: owner, StripeIndex: stripe})
	return img.SetXattr(target, lustre.XattrFilterFID, ff)
}

// objectToLostFound parks an unclaimed OST object: a stub file under
// /lost+found references it. The object's data survives but its
// original identity/ownership is never investigated — the conservative
// behaviour Table I documents.
func (r *runner) objectToLostFound(ost int, img *ldiskfs.Image, ino ldiskfs.Ino, objFID lustre.FID) error {
	lfIno, lfFID, err := r.lostFound()
	if err != nil {
		return err
	}
	ownerFID := r.allocFID()
	name := "obj-" + strings.Trim(objFID.String(), "[]")
	fileIno, err := r.mdt.AllocInode(ldiskfs.TypeFile)
	if err != nil {
		return err
	}
	if err := r.mdt.SetXattr(fileIno, lustre.XattrLMA, lustre.EncodeLMA(ownerFID)); err != nil {
		return err
	}
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lfFID, Name: name}})
	if err != nil {
		return err
	}
	if err := r.mdt.SetXattr(fileIno, lustre.XattrLink, link); err != nil {
		return err
	}
	lov, err := lustre.EncodeLOVEA(lustre.Layout{
		StripeSize: 64 << 10,
		Stripes:    []lustre.StripeEntry{{OSTIndex: uint32(ost), ObjectFID: objFID}},
	})
	if err != nil {
		return err
	}
	if err := r.mdt.SetXattr(fileIno, lustre.XattrLOV, lov); err != nil {
		return err
	}
	if sz, serr := img.Size(ino); serr == nil {
		_ = r.mdt.SetSize(fileIno, sz)
	}
	if err := r.mdt.AddDirent(lfIno, ldiskfs.Dirent{
		Ino: fileIno, Type: ldiskfs.TypeFile, Tag: ownerFID.Bytes(), Name: name,
	}); err != nil && !errors.Is(err, ldiskfs.ErrExist) {
		return err
	}
	ff := lustre.EncodeFilterFID(lustre.FilterFID{ParentFID: ownerFID, StripeIndex: 0})
	return img.SetXattr(ino, lustre.XattrFilterFID, ff)
}
