// Package lfsck implements a rule-based baseline checker that mirrors
// the documented behaviour of Lustre's LFSCK (paper §II-B, Table I):
//
//   - fixed repair rules — metadata stored on the MDS (or the parent
//     directory) always overwrites its counterpart;
//   - no root-cause analysis — a dangling reference is always "the
//     target is missing" (a stub is recreated), a mismatch is always
//     "the point-back is wrong" (overwritten from the MDS), and objects
//     it cannot place are parked in lost+found;
//   - a sequential, per-inode pipeline with one synchronous RPC round
//     trip per cross-server check, reproducing the high fan-out and
//     tight coupling that make the original slow (paper §V-C).
//
// The package exists as the comparison baseline for Fig. 7 (behaviour)
// and Table VI (performance).
package lfsck

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/wire"
)

// LostSeq is the FID sequence LFSCK uses for lost+found artifacts.
const LostSeq uint64 = 0x200000E00

// Options configures an LFSCK run.
type Options struct {
	// UseTCP performs cross-server checks as real RPCs over localhost
	// (one synchronous round trip per object, as in the kernel
	// implementation). False calls the object services in process —
	// still one call per object, just without the socket.
	UseTCP bool
	// DryRun reports actions without mutating the images.
	DryRun bool
	// BatchSize, when > 1, switches the cross-server checks to batched
	// RPCs: each phase first sweeps its inodes collecting the FIDs it
	// must resolve, fetches them BatchSize at a time, then evaluates
	// against the prefetched answers. This models the "batch the RPCs"
	// optimisation proposed for LFSCK (Dai et al., MSST'19) — the
	// ablation showing how much of FaultyRank's Table VI advantage
	// survives a modernised baseline. 0 or 1 keeps the kernel
	// implementation's one-round-trip-per-object pipeline.
	BatchSize int
}

// ActionKind classifies an LFSCK repair action.
type ActionKind uint8

const (
	// NSFixLinkEA overwrites a child's LinkEA from the parent's dirent
	// (the parent always wins).
	NSFixLinkEA ActionKind = iota
	// NSDropDirent removes a directory entry whose target inode is gone.
	NSDropDirent
	// NSFixDirentFID rewrites the FID stored in a directory entry from
	// the child inode's LMA (the local inode is trusted, so a corrupted
	// child identity is accepted as the new truth).
	NSFixDirentFID
	// NSLostFound reattaches a namespace object nothing references
	// under /lost+found.
	NSLostFound
	// LayoutRecreateObject creates an empty stub object for a dangling
	// LOVEA reference (the MDS layout always wins).
	LayoutRecreateObject
	// LayoutFixFilterFID overwrites an object's filter-fid from the MDS
	// layout (the MDS always wins).
	LayoutFixFilterFID
	// LayoutLostFoundObject parks an OST object whose owner does not
	// acknowledge it under lost+found.
	LayoutLostFoundObject
)

func (k ActionKind) String() string {
	switch k {
	case NSFixLinkEA:
		return "ns-fix-linkea"
	case NSDropDirent:
		return "ns-drop-dirent"
	case NSFixDirentFID:
		return "ns-fix-dirent-fid"
	case NSLostFound:
		return "ns-lost+found"
	case LayoutRecreateObject:
		return "layout-recreate-object"
	case LayoutFixFilterFID:
		return "layout-fix-filterfid"
	case LayoutLostFoundObject:
		return "layout-lost+found-object"
	default:
		return fmt.Sprintf("action(%d)", uint8(k))
	}
}

// Action is one repair LFSCK performed (or would perform in dry-run).
type Action struct {
	Kind   ActionKind
	FID    lustre.FID
	Detail string
}

// Stats counts LFSCK's work.
type Stats struct {
	InodesChecked int64
	RPCs          int64
}

// Result is the outcome of an LFSCK run.
type Result struct {
	Duration            time.Duration
	TNamespace, TLayout time.Duration
	TOrphan             time.Duration
	Actions             []Action
	Stats               Stats
	lostFoundIno        ldiskfs.Ino
	lostFoundFID        lustre.FID
}

// ActionsOfKind filters the action log.
func (r *Result) ActionsOfKind(k ActionKind) []Action {
	var out []Action
	for _, a := range r.Actions {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// HasAction reports whether an action of kind k names fid.
func (r *Result) HasAction(k ActionKind, fid lustre.FID) bool {
	for _, a := range r.Actions {
		if a.Kind == k && a.FID == fid {
			return true
		}
	}
	return false
}

// statFn answers a StatFID query against one server.
type statFn func(lustre.FID) (wire.FIDInfo, error)

// batchFn answers many StatFID queries in one round trip.
type batchFn func([]lustre.FID) ([]wire.FIDInfo, error)

// run context shared by the phases.
type runner struct {
	opt      Options
	mdt      *ldiskfs.Image
	osts     []*ldiskfs.Image
	mdtStat  statFn
	ostStat  []statFn
	mdtBatch batchFn
	ostBatch []batchFn
	res      *Result
	// mdtIndex is the MDT's FID->ino object index (Lustre's OI files).
	mdtIndex map[lustre.FID]ldiskfs.Ino
	nextOid  uint32
	closers  []func()
}

// resolveAll prefetches a deduplicated FID set through the batched RPC,
// BatchSize FIDs per round trip.
func (r *runner) resolveAll(batch batchFn, fids []lustre.FID) (map[lustre.FID]wire.FIDInfo, error) {
	seen := make(map[lustre.FID]bool, len(fids))
	uniq := fids[:0]
	for _, f := range fids {
		if !seen[f] {
			seen[f] = true
			uniq = append(uniq, f)
		}
	}
	out := make(map[lustre.FID]wire.FIDInfo, len(uniq))
	size := r.opt.BatchSize
	for lo := 0; lo < len(uniq); lo += size {
		hi := lo + size
		if hi > len(uniq) {
			hi = len(uniq)
		}
		infos, err := batch(uniq[lo:hi])
		if err != nil {
			return nil, err
		}
		for i, f := range uniq[lo:hi] {
			out[f] = infos[i]
		}
	}
	return out, nil
}

// Run executes the three LFSCK phases over the server images (MDT
// first, then OSTs by index). Multi-MDT (DNE) clusters are rejected:
// distributed-namespace checking is a known weak spot of the real LFSCK
// and out of scope for this baseline (FaultyRank's checker handles any
// number of MDTs — the FID-keyed graph merges regardless of placement).
func Run(images []*ldiskfs.Image, opt Options) (*Result, error) {
	if len(images) < 2 {
		return nil, fmt.Errorf("lfsck: need MDT + at least one OST")
	}
	for _, img := range images[1:] {
		if strings.HasPrefix(img.Label(), "mdt") {
			return nil, fmt.Errorf("lfsck: multiple MDTs not supported by the baseline (got %q)", img.Label())
		}
	}
	r := &runner{
		opt:  opt,
		mdt:  images[0],
		osts: images[1:],
		res:  &Result{},
	}
	defer func() {
		for _, c := range r.closers {
			c()
		}
	}()
	if err := r.setupServices(images); err != nil {
		return nil, err
	}

	start := time.Now()
	t := time.Now()
	if err := r.namespacePhase(); err != nil {
		return nil, err
	}
	r.res.TNamespace = time.Since(t)

	t = time.Now()
	if err := r.layoutPhase(); err != nil {
		return nil, err
	}
	r.res.TLayout = time.Since(t)

	t = time.Now()
	if err := r.orphanPhase(); err != nil {
		return nil, err
	}
	r.res.TOrphan = time.Since(t)
	r.res.Duration = time.Since(start)
	return r.res, nil
}

// setupServices builds the per-server object services (and, with
// UseTCP, the localhost endpoints + clients).
func (r *runner) setupServices(images []*ldiskfs.Image) error {
	r.mdtIndex = make(map[lustre.FID]ldiskfs.Ino)
	err := r.mdt.AllocatedInodes(func(ino ldiskfs.Ino, _ ldiskfs.FileType) error {
		if raw, ok, _ := r.mdt.GetXattr(ino, lustre.XattrLMA); ok {
			if fid, err := lustre.DecodeLMA(raw); err == nil && !fid.IsZero() {
				if _, dup := r.mdtIndex[fid]; !dup {
					r.mdtIndex[fid] = ino
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, img := range images {
		svc, err := wire.NewObjectService(img)
		if err != nil {
			return err
		}
		var stat statFn
		var batch batchFn
		if r.opt.UseTCP {
			addr, err := svc.Listen()
			if err != nil {
				return err
			}
			cli, err := wire.Dial(addr)
			if err != nil {
				svc.Close()
				return err
			}
			r.closers = append(r.closers, func() { cli.Close(); svc.Close() })
			stat = func(f lustre.FID) (wire.FIDInfo, error) {
				r.res.Stats.RPCs++
				return cli.Stat(f)
			}
			batch = func(fids []lustre.FID) ([]wire.FIDInfo, error) {
				r.res.Stats.RPCs++ // one round trip per batch
				return cli.StatBatch(fids)
			}
		} else {
			r.closers = append(r.closers, svc.Close)
			local := svc
			stat = func(f lustre.FID) (wire.FIDInfo, error) {
				r.res.Stats.RPCs++
				return local.Stat(f), nil
			}
			batch = func(fids []lustre.FID) ([]wire.FIDInfo, error) {
				r.res.Stats.RPCs++
				out := make([]wire.FIDInfo, len(fids))
				for i, f := range fids {
					out[i] = local.Stat(f)
				}
				return out, nil
			}
		}
		if img == r.mdt {
			r.mdtStat = stat
			r.mdtBatch = batch
		} else {
			r.ostStat = append(r.ostStat, stat)
			r.ostBatch = append(r.ostBatch, batch)
		}
	}
	return nil
}

func (r *runner) act(k ActionKind, fid lustre.FID, format string, args ...interface{}) {
	r.res.Actions = append(r.res.Actions, Action{
		Kind: k, FID: fid, Detail: fmt.Sprintf(format, args...),
	})
}

func (r *runner) allocFID() lustre.FID {
	r.nextOid++
	return lustre.FID{Seq: LostSeq, Oid: r.nextOid}
}

func ostIndexOf(label string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(label, "ost"))
	if err != nil {
		return -1
	}
	return n
}
