package faultyrank_test

import (
	"testing"

	"faultyrank"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
)

// TestFacadeEndToEnd exercises the re-exported top-level API: cluster,
// check, repair, and the LFSCK baseline.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := faultyrank.DefaultClusterConfig()
	cfg.NumOSTs = 2
	cfg.Geometry = ldiskfs.CompactGeometry()
	cluster, err := faultyrank.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.MkdirAll("/x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cluster.Create("/x/f"+string(rune('a'+i)), 2*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inject.Inject(cluster, inject.MismatchFilterFID, "/x/fa"); err != nil {
		t.Fatal(err)
	}
	images := checker.ClusterImages(cluster)
	res, err := faultyrank.Check(images, faultyrank.DefaultCheckOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("fault not found through the facade")
	}
	applied, skipped := faultyrank.Repair(images, res)
	if applied == 0 || skipped != 0 {
		t.Fatalf("repair: applied=%d skipped=%d", applied, skipped)
	}
	verify, err := faultyrank.CheckCluster(cluster, faultyrank.DefaultCheckOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(verify.Findings) != 0 {
		t.Fatalf("residual findings: %d", len(verify.Findings))
	}
	lres, err := faultyrank.RunLFSCK(images, faultyrank.LFSCKOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(lres.Actions) != 0 {
		t.Fatalf("LFSCK found actions on a repaired cluster: %+v", lres.Actions)
	}
	opt := faultyrank.DefaultOptions()
	if opt.Epsilon != 0.1 || opt.UnpairedWeight != 0.1 {
		t.Errorf("default options drifted: %+v", opt)
	}
}
