module faultyrank

go 1.24
