package faultyrank_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every CLI into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	cmd := exec.Command("go", "build", "-o", bin+string(os.PathSeparator), "./cmd/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, wantExit int, bin, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, tool), args...)
	out, err := cmd.CombinedOutput()
	exit := 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	if exit != wantExit {
		t.Fatalf("%s %v: exit %d, want %d\n%s", tool, args, exit, wantExit, out)
	}
	return string(out)
}

// TestCLIPipeline drives the complete toolchain the README documents:
// make a cluster, corrupt it, check (non-zero exit), repair, re-check
// clean, compare with the LFSCK tool, and exercise the graph workbench.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs all CLIs")
	}
	bin := buildTools(t)
	work := t.TempDir()
	cluster := filepath.Join(work, "cluster")

	out := run(t, 0, bin, "frmkfs", "-out", cluster, "-files", "300", "-compact")
	if !strings.Contains(out, "populated: ") || !strings.Contains(out, "wrote 9 images") {
		t.Fatalf("frmkfs output: %s", out)
	}

	out = run(t, 0, bin, "frinject", "-list")
	if !strings.Contains(out, "mismatch/file-id-corrupt") {
		t.Fatalf("frinject -list output: %s", out)
	}
	out = run(t, 0, bin, "frinject", "-dir", cluster, "-scenario", "dangling/object-id-corrupt")
	if !strings.Contains(out, "ground truth: id field") {
		t.Fatalf("frinject output: %s", out)
	}

	// Findings present, no repair requested: exit 1.
	out = run(t, 1, bin, "faultyrank", "-dir", cluster)
	if !strings.Contains(out, "faulty-id") {
		t.Fatalf("faultyrank check output: %s", out)
	}
	// Repair and verify.
	out = run(t, 0, bin, "faultyrank", "-dir", cluster, "-repair")
	if !strings.Contains(out, "consistent after repair") {
		t.Fatalf("faultyrank repair output: %s", out)
	}
	// Now clean: exit 0, no findings.
	out = run(t, 0, bin, "faultyrank", "-dir", cluster)
	if !strings.Contains(out, "no findings") {
		t.Fatalf("faultyrank verify output: %s", out)
	}
	// LFSCK agrees the repaired cluster is clean.
	out = run(t, 0, bin, "frlfsck", "-dir", cluster, "-dry-run")
	if !strings.Contains(out, "0 actions") {
		t.Fatalf("frlfsck output: %s", out)
	}

	// Graph workbench: gen -> stats -> convert -> rank.
	gbin := filepath.Join(work, "g.bin")
	gtxt := filepath.Join(work, "g.txt")
	run(t, 0, bin, "frgraph", "gen", "-kind", "rmat", "-scale", "10", "-o", gbin)
	out = run(t, 0, bin, "frgraph", "stats", "-i", gbin)
	if !strings.Contains(out, "vertices ") {
		t.Fatalf("frgraph stats output: %s", out)
	}
	run(t, 0, bin, "frgraph", "convert", "-i", gbin, "-o", gtxt)
	out = run(t, 0, bin, "frgraph", "rank", "-i", gtxt, "-trace")
	if !strings.Contains(out, "converged=true") || !strings.Contains(out, "iter  1") {
		t.Fatalf("frgraph rank output: %s", out)
	}

	// Table generator smoke.
	out = run(t, 0, bin, "frbench", "-table", "2")
	if !strings.Contains(out, "Table II") {
		t.Fatalf("frbench output: %s", out)
	}
}

// TestCLIObservability drives the observability surface end to end: a
// TCP-mode check with a live metrics endpoint and a run manifest, then
// the machine-readable bench artifact.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs CLIs")
	}
	bin := buildTools(t)
	work := t.TempDir()
	cluster := filepath.Join(work, "cluster")
	run(t, 0, bin, "frmkfs", "-out", cluster, "-files", "120", "-compact")

	manifest := filepath.Join(work, "run.json")
	clusterMf := filepath.Join(work, "cluster.json")
	out := run(t, 0, bin, "faultyrank", "-dir", cluster, "-tcp",
		"-metrics-addr", "127.0.0.1:0", "-run-manifest", manifest,
		"-cluster-manifest", clusterMf, "-profile-rates", "100")
	if !strings.Contains(out, "serving /metrics") {
		t.Fatalf("metrics endpoint not announced: %s", out)
	}
	if !strings.Contains(out, "run manifest written") {
		t.Fatalf("manifest not announced: %s", out)
	}
	if !strings.Contains(out, "cluster manifest written") {
		t.Fatalf("cluster manifest not announced: %s", out)
	}
	if !strings.Contains(out, "per-server scan timeline:") || !strings.Contains(out, "straggler: ") {
		t.Fatalf("report lacks the per-server timeline: %s", out)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Schema string `json:"schema"`
		Phases struct {
			Name string `json:"name"`
		} `json:"phases"`
		Results map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest not valid JSON: %v\n%s", err, data)
	}
	if m.Schema != "faultyrank/run-manifest/v1" || m.Phases.Name != "run" {
		t.Fatalf("manifest shape wrong: schema=%q root=%q", m.Schema, m.Phases.Name)
	}
	for _, key := range []string{"coverage", "convergence", "scan", "net", "cluster"} {
		if _, ok := m.Results[key]; !ok {
			t.Errorf("manifest results lack %q:\n%s", key, data)
		}
	}

	// The standalone cluster manifest: versioned schema, one section per
	// server (frmkfs -compact builds 1 MDT + 8 OSTs), a named straggler.
	cdata, err := os.ReadFile(clusterMf)
	if err != nil {
		t.Fatal(err)
	}
	var cm struct {
		Schema  string `json:"schema"`
		Servers []struct {
			Server  string `json:"server"`
			Missing bool   `json:"missing"`
		} `json:"servers"`
		Skew struct {
			Straggler string `json:"straggler"`
		} `json:"skew"`
	}
	if err := json.Unmarshal(cdata, &cm); err != nil {
		t.Fatalf("cluster manifest not valid JSON: %v\n%s", err, cdata)
	}
	if cm.Schema != "faultyrank/cluster-manifest/v1" {
		t.Fatalf("cluster manifest schema = %q", cm.Schema)
	}
	if len(cm.Servers) != 9 {
		t.Fatalf("cluster manifest has %d server sections, want 9:\n%s", len(cm.Servers), cdata)
	}
	for _, s := range cm.Servers {
		if s.Missing {
			t.Errorf("clean run marked %s missing", s.Server)
		}
	}
	if cm.Skew.Straggler == "" {
		t.Fatalf("cluster manifest names no straggler:\n%s", cdata)
	}

	// Machine-readable bench artifact.
	out = run(t, 0, bin, "frbench", "-table", "ingest", "-scale", "smoke", "-json", "-out", work)
	if !strings.Contains(out, "BENCH_ingest.json") {
		t.Fatalf("artifact path not announced: %s", out)
	}
	bdata, err := os.ReadFile(filepath.Join(work, "BENCH_ingest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Schema string `json:"schema"`
		Name   string `json:"name"`
		Tables []struct {
			Rows [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(bdata, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, bdata)
	}
	if art.Schema != "faultyrank/bench/v1" || art.Name != "ingest" {
		t.Fatalf("artifact identity wrong: %q %q", art.Schema, art.Name)
	}
	if len(art.Tables) == 0 || len(art.Tables[0].Rows) == 0 {
		t.Fatalf("artifact has no rows: %s", bdata)
	}
}

// TestCLIOnline drives the incremental-check surface: a one-shot
// -online check against an injected fault, the flag guards, a bounded
// watch loop, and the online bench artifact.
func TestCLIOnline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs CLIs")
	}
	bin := buildTools(t)
	work := t.TempDir()
	cluster := filepath.Join(work, "cluster")
	run(t, 0, bin, "frmkfs", "-out", cluster, "-files", "200", "-compact")

	// Clean cluster, bounded watch loop: idle rounds, exit 0.
	out := run(t, 0, bin, "faultyrank", "-dir", cluster, "-online",
		"-watch", "10ms", "-watch-rounds", "3")
	if !strings.Contains(out, "round 3: refreshed 0 inode(s)") {
		t.Fatalf("watch output lacks round 3: %s", out)
	}

	// Flag guards: -online is check-only, -watch needs -online, and
	// -state is an online-mode flag.
	run(t, 1, bin, "faultyrank", "-dir", cluster, "-online", "-repair")
	run(t, 1, bin, "faultyrank", "-dir", cluster, "-watch", "1s")
	run(t, 1, bin, "faultyrank", "-dir", cluster, "-state", filepath.Join(work, "state"))

	// Durable state: the first -state run starts fresh and leaves a
	// snapshot behind; the second resumes from it instead of rescanning.
	stateDir := filepath.Join(work, "state")
	out = run(t, 0, bin, "faultyrank", "-dir", cluster, "-online", "-state", stateDir,
		"-watch", "10ms", "-watch-rounds", "2")
	if !strings.Contains(out, "starting fresh") {
		t.Fatalf("first -state run output lacks fresh-start notice: %s", out)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "tracker.snap")); err != nil {
		t.Fatalf("watch with -state left no snapshot: %v", err)
	}
	out = run(t, 0, bin, "faultyrank", "-dir", cluster, "-online", "-state", stateDir)
	if !strings.Contains(out, "resumed tracker state") {
		t.Fatalf("second -state run did not resume: %s", out)
	}
	if !strings.Contains(out, "no findings") {
		t.Fatalf("resumed check on clean cluster: %s", out)
	}

	// Inject, then a one-shot online check finds it: exit 1.
	run(t, 0, bin, "frinject", "-dir", cluster, "-scenario", "dangling/object-id-corrupt")
	out = run(t, 1, bin, "faultyrank", "-dir", cluster, "-online")
	if !strings.Contains(out, "faulty-id") {
		t.Fatalf("online check output: %s", out)
	}

	// The online bench artifact.
	out = run(t, 0, bin, "frbench", "-table", "online", "-scale", "smoke", "-json", "-out", work)
	if !strings.Contains(out, "BENCH_online.json") {
		t.Fatalf("artifact path not announced: %s", out)
	}
	bdata, err := os.ReadFile(filepath.Join(work, "BENCH_online.json"))
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Schema string `json:"schema"`
		Name   string `json:"name"`
		Tables []struct {
			Rows [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(bdata, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, bdata)
	}
	if art.Schema != "faultyrank/bench/v1" || art.Name != "online" {
		t.Fatalf("artifact identity wrong: %q %q", art.Schema, art.Name)
	}
	if len(art.Tables) == 0 || len(art.Tables[0].Rows) == 0 {
		t.Fatalf("artifact has no rows: %s", bdata)
	}
}

// TestCLIAgedCluster exercises the -inodes aging path of frmkfs plus a
// TCP-mode check.
func TestCLIAgedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs CLIs")
	}
	bin := buildTools(t)
	cluster := filepath.Join(t.TempDir(), "aged")
	out := run(t, 0, bin, "frmkfs", "-out", cluster, "-inodes", "1500", "-compact")
	if !strings.Contains(out, "aged cluster:") {
		t.Fatalf("frmkfs aging output: %s", out)
	}
	out = run(t, 0, bin, "faultyrank", "-dir", cluster, "-tcp")
	if !strings.Contains(out, "no findings") {
		t.Fatalf("tcp check output: %s", out)
	}
}
