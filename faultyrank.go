// Package faultyrank is a from-scratch Go implementation of FaultyRank
// (Kamat, Islam, Zheng, Dai — IPDPS 2023): a graph-based parallel file
// system checker. PFS metadata (directories, files, stripe objects and
// their DIRENT/LinkEA/LOVEA/filter-fid pointers) is modelled as a
// directed graph; an iterative, PageRank-style algorithm assigns every
// object an ID-credibility and a Property-credibility score, and the
// fields whose scores collapse are reported as the root cause of an
// inconsistency together with the most promising repair.
//
// The repository contains the complete system of the paper plus every
// substrate its evaluation needs, each in its own package:
//
//	internal/core      the FaultyRank algorithm (ranks, detection, repairs)
//	internal/graph     CSR metadata graphs with paired/unpaired edges
//	internal/ldiskfs   ext4/ldiskfs-style binary disk images
//	internal/lustre    simulated Lustre cluster (MDT + OSTs, FIDs, EAs)
//	internal/scanner   per-server raw-image metadata scanners
//	internal/agg       partial-graph aggregation and FID→GID remap
//	internal/wire      TCP framing, bulk transfer, per-object RPCs
//	internal/checker   the end-to-end pipeline with stage timings
//	internal/repair    repair application + lost+found reconstruction
//	internal/lfsck     the rule-based LFSCK baseline (Table I semantics)
//	internal/inject    the eight Fig. 7 fault-injection scenarios
//	internal/workload  LANL-style namespaces, aging, SNAP-like graphs
//	internal/rmat      Graph500 R-MAT generation
//	internal/bench     harnesses regenerating every paper table/figure
//
// This file re-exports the primary entry points so in-module consumers
// (cmd/, examples/) and tests have one import surface.
package faultyrank

import (
	"context"

	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lfsck"
	"faultyrank/internal/lustre"
	"faultyrank/internal/repair"
)

// Core algorithm surface.
type (
	// Options configures the FaultyRank iteration and detection.
	Options = core.Options
	// RankResult holds the converged credibility scores.
	RankResult = core.Result
)

// DefaultOptions returns the paper's configuration (ε=0.1, unpaired
// weight 1/10, threshold 0.1×N-normalised).
func DefaultOptions() Options { return core.DefaultOptions() }

// Cluster simulation surface.
type (
	// Cluster is a simulated Lustre instance (one MDT + N OSTs).
	Cluster = lustre.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = lustre.Config
	// FID is a Lustre file identifier.
	FID = lustre.FID
	// Image is an ldiskfs-style server disk image.
	Image = ldiskfs.Image
)

// NewCluster builds an empty simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return lustre.NewCluster(cfg) }

// DefaultClusterConfig mirrors the paper's testbed (8 OSTs, 64 KiB
// stripes, stripe_count -1).
func DefaultClusterConfig() ClusterConfig { return lustre.DefaultConfig() }

// Checker pipeline surface.
type (
	// CheckOptions configures a full pipeline run.
	CheckOptions = checker.Options
	// CheckResult is the pipeline outcome (timings, graph, findings).
	CheckResult = checker.Result
	// Finding is one classified inconsistency with repairs.
	Finding = checker.Finding
)

// Check runs the full FaultyRank pipeline (scan → aggregate → rank →
// classify) over server images ordered MDT-first.
func Check(images []*Image, opt CheckOptions) (*CheckResult, error) {
	return checker.Run(images, opt)
}

// CheckContext is Check under a context: cancellation (or the
// CheckOptions scan deadline) unwedges every network wait on the TCP
// path, and with AllowDegraded the run completes from surviving scanner
// streams, naming lost servers in CheckResult.Coverage.
func CheckContext(ctx context.Context, images []*Image, opt CheckOptions) (*CheckResult, error) {
	return checker.RunContext(ctx, images, opt)
}

// CheckCluster is Check over a simulated cluster's images.
func CheckCluster(c *Cluster, opt CheckOptions) (*CheckResult, error) {
	return checker.RunCluster(c, opt)
}

// DefaultCheckOptions returns the paper-faithful pipeline configuration.
func DefaultCheckOptions() CheckOptions { return checker.DefaultOptions() }

// Repair applies a check result's recommended repairs to the images and
// returns the number applied and skipped.
func Repair(images []*Image, res *CheckResult) (applied, skipped int) {
	sum := repair.NewEngine(images, res).Apply(res.Findings)
	return sum.Applied, sum.Skipped
}

// LFSCK surface (the baseline checker).
type (
	// LFSCKOptions configures the baseline.
	LFSCKOptions = lfsck.Options
	// LFSCKResult is the baseline's action log and timings.
	LFSCKResult = lfsck.Result
)

// RunLFSCK executes the rule-based baseline over server images.
func RunLFSCK(images []*Image, opt LFSCKOptions) (*LFSCKResult, error) {
	return lfsck.Run(images, opt)
}
